"""Run-length encoding for sparse activations — paper §III-B.

EVA2 stores the key frame's target activation on chip only because CNN
activations are mostly zeros (post-ReLU) and run-length encoding removes
them: "for Faster16 ... sparse storage reduces memory requirements by more
than 80%".

The encoding matches the hardware's stream format: per channel, a sequence
of (zero_gap, value) entries, where ``zero_gap`` counts the zeros skipped
before the value. Gaps saturate at ``2**gap_bits - 1``; longer runs emit
placeholder entries with a zero value (exactly the structure the sparsity
decoder lanes of Fig. 10 consume — their ``zero_gap``/``value`` registers
and max-gap handling mirror this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

__all__ = ["RLEStream", "encode", "decode", "storage_report"]

#: Value width used throughout EVA2's datapath.
VALUE_BITS = 16
DEFAULT_GAP_BITS = 4


@dataclass
class RLEStream:
    """One channel-major run-length-encoded activation."""

    shape: Tuple[int, int, int]
    gap_bits: int
    #: per-channel list of (zero_gap, value) entry arrays.
    gaps: List[np.ndarray]
    values: List[np.ndarray]

    @property
    def num_entries(self) -> int:
        return int(sum(len(g) for g in self.gaps))

    def encoded_bits(self) -> int:
        """Total storage including per-entry gap and value fields."""
        return self.num_entries * (VALUE_BITS + self.gap_bits)

    def dense_bits(self) -> int:
        c, h, w = self.shape
        return c * h * w * VALUE_BITS

    def compression_ratio(self) -> float:
        """encoded / dense size; < 0.2 reproduces the paper's >80% saving."""
        dense = self.dense_bits()
        return self.encoded_bits() / dense if dense else 0.0

    def encoded_bytes(self) -> int:
        return (self.encoded_bits() + 7) // 8


def encode(
    activation: np.ndarray, gap_bits: int = DEFAULT_GAP_BITS, tolerance: float = 0.0
) -> RLEStream:
    """Encode a (C, H, W) activation.

    ``tolerance`` widens the zero test (|x| <= tolerance), modelling the
    near-zero rounding sparse accelerators apply (§II-C2); the default is
    exact zeros only, so post-ReLU data round-trips losslessly.
    """
    if activation.ndim != 3:
        raise ValueError(f"activation must be (C, H, W), got {activation.shape}")
    if gap_bits < 1:
        raise ValueError(f"gap_bits must be >= 1, got {gap_bits}")
    if tolerance < 0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")

    max_gap = (1 << gap_bits) - 1
    gaps: List[np.ndarray] = []
    values: List[np.ndarray] = []
    for channel in activation:
        flat = channel.reshape(-1)
        keep = np.abs(flat) > tolerance
        channel_gaps: List[int] = []
        channel_values: List[float] = []
        gap = 0
        for value, keep_it in zip(flat, keep):
            if not keep_it:
                gap += 1
                if gap == max_gap + 1:
                    # Gap overflow: placeholder entry with value 0.
                    channel_gaps.append(max_gap)
                    channel_values.append(0.0)
                    gap = 0
                continue
            channel_gaps.append(gap)
            channel_values.append(float(value))
            gap = 0
        gaps.append(np.asarray(channel_gaps, dtype=np.int64))
        values.append(np.asarray(channel_values, dtype=np.float64))
    return RLEStream(
        shape=activation.shape, gap_bits=gap_bits, gaps=gaps, values=values
    )


def decode(stream: RLEStream) -> np.ndarray:
    """Reconstruct the dense (C, H, W) activation."""
    c, h, w = stream.shape
    out = np.zeros((c, h * w))
    for channel_index in range(c):
        position = 0
        for gap, value in zip(stream.gaps[channel_index], stream.values[channel_index]):
            position += int(gap)
            if position >= h * w:
                raise ValueError(
                    f"corrupt stream: channel {channel_index} overruns "
                    f"({position} >= {h * w})"
                )
            out[channel_index, position] = value
            position += 1
    return out.reshape(c, h, w)


def storage_report(activation: np.ndarray, gap_bits: int = DEFAULT_GAP_BITS) -> dict:
    """Dense vs encoded sizes and the resulting saving, for the RLE bench."""
    stream = encode(activation, gap_bits=gap_bits)
    dense_bytes = stream.dense_bits() // 8
    encoded = stream.encoded_bytes()
    return {
        "dense_bytes": dense_bytes,
        "encoded_bytes": encoded,
        "compression_ratio": stream.compression_ratio(),
        "saving_percent": 100.0 * (1.0 - stream.compression_ratio()),
        "density": float((activation != 0).mean()),
    }
