"""Memory technology constants (CACTI-style, 65 nm).

The paper sizes EVA2's three large buffers (two pixel buffers, one sparse
activation buffer) in eDRAM and the small ones in SRAM, with CACTI 6.5
providing power/performance/area (§IV-B). We encode first-order per-byte
constants consistent with that flow: densities chosen so the buffer areas
reproduce the paper's Fig. 12 breakdown (pixel buffers 54.5% and
activation buffer 16.0% of EVA2's 2.6 mm2), access energies in the range
CACTI reports for ~1 MB 65 nm arrays.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MemoryTech", "EDRAM", "SRAM", "buffer_area_mm2", "access_energy_pj"]


@dataclass(frozen=True)
class MemoryTech:
    """One memory technology's first-order constants."""

    name: str
    density_mb_per_mm2: float
    read_energy_pj_per_byte: float
    write_energy_pj_per_byte: float
    #: random-access cycle time; EVA2's 7 ns clock was matched to this.
    cycle_ns: float

    def area_mm2(self, size_bytes: int) -> float:
        """Die area for a buffer of ``size_bytes``."""
        if size_bytes < 0:
            raise ValueError(f"size must be >= 0, got {size_bytes}")
        return (size_bytes / (1024 * 1024)) / self.density_mb_per_mm2

    def read_energy_mj(self, num_bytes: int) -> float:
        return num_bytes * self.read_energy_pj_per_byte * 1e-9

    def write_energy_mj(self, num_bytes: int) -> float:
        return num_bytes * self.write_energy_pj_per_byte * 1e-9


#: 65 nm eDRAM (the three large EVA2 buffers).
EDRAM = MemoryTech(
    name="eDRAM",
    density_mb_per_mm2=0.79,
    read_energy_pj_per_byte=1.0,
    write_energy_pj_per_byte=1.2,
    cycle_ns=7.0,
)

#: 65 nm SRAM (tile memory, past-sum memory, min-check registers).
SRAM = MemoryTech(
    name="SRAM",
    density_mb_per_mm2=0.35,
    read_energy_pj_per_byte=0.5,
    write_energy_pj_per_byte=0.6,
    cycle_ns=2.0,
)


def buffer_area_mm2(size_bytes: int, tech: MemoryTech = EDRAM) -> float:
    """Convenience wrapper used by the area model."""
    return tech.area_mm2(size_bytes)


def access_energy_pj(num_bytes: int, tech: MemoryTech = EDRAM, write: bool = False) -> float:
    """Access energy in picojoules for ``num_bytes``."""
    per_byte = tech.write_energy_pj_per_byte if write else tech.read_energy_pj_per_byte
    return num_bytes * per_byte
