"""Tests for the synthetic video substrate: sprites, scenes, clip
generation, and dataset splits."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.video import (
    NUM_CLASSES,
    SHAPE_NAMES,
    SceneConfig,
    build_clipset,
    frames_and_labels,
    generate_clip,
    scenario,
    scenario_names,
)
from repro.video.sprites import (
    background_texture,
    checker_texture,
    gradient_texture,
    shape_mask,
    smooth_noise_texture,
)


class TestSprites:
    def test_eight_classes(self):
        assert NUM_CLASSES == 8
        assert len(SHAPE_NAMES) == 8

    @pytest.mark.parametrize("class_id", range(NUM_CLASSES))
    def test_masks_nonempty_and_binary(self, class_id):
        mask = shape_mask(class_id, 20)
        assert mask.shape == (20, 20)
        assert set(np.unique(mask)) <= {0.0, 1.0}
        assert 0.05 < mask.mean() < 1.0

    def test_masks_distinguishable(self):
        masks = [shape_mask(c, 20) for c in range(NUM_CLASSES)]
        for i in range(NUM_CLASSES):
            for j in range(i + 1, NUM_CLASSES):
                assert not np.array_equal(masks[i], masks[j])

    def test_bad_class_id(self):
        with pytest.raises(ValueError):
            shape_mask(NUM_CLASSES, 20)

    def test_tiny_sprite_rejected(self):
        with pytest.raises(ValueError):
            shape_mask(0, 2)

    def test_noise_texture_range_and_determinism(self):
        a = smooth_noise_texture(32, 48, np.random.default_rng(5))
        b = smooth_noise_texture(32, 48, np.random.default_rng(5))
        assert a.shape == (32, 48)
        assert 0.0 <= a.min() and a.max() <= 1.0
        np.testing.assert_array_equal(a, b)

    def test_checker_texture(self):
        tex = checker_texture(16, 16, period=4)
        assert set(np.unique(tex)) == {0.25, 0.75}

    def test_gradient_texture(self):
        tex = gradient_texture(8, 8)
        assert tex[0, 0] == 0.0 and tex[0, -1] == 1.0

    def test_background_kinds(self):
        rng = np.random.default_rng(0)
        for kind in ("noise", "checker", "gradient"):
            tex = background_texture(32, 32, rng, kind)
            assert tex.shape == (32, 32)
        with pytest.raises(ValueError):
            background_texture(32, 32, rng, "marble")


class TestScenes:
    def test_all_scenarios_resolvable(self):
        for name in scenario_names():
            assert scenario(name).name == name

    def test_unknown_scenario(self):
        with pytest.raises(KeyError):
            scenario("underwater")

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SceneConfig(name="bad", num_frames=0)
        with pytest.raises(ValueError):
            SceneConfig(name="bad", sprite_size=(30, 20))
        with pytest.raises(ValueError):
            SceneConfig(name="bad", sprite_size=(60, 70))


class TestGenerateClip:
    def test_shapes_and_range(self):
        clip = generate_clip(scenario("linear_motion"), seed=1)
        assert clip.frames.shape == (24, 64, 64)
        assert clip.frames.min() >= 0.0 and clip.frames.max() <= 1.0
        assert len(clip.annotations) == 24

    def test_determinism(self):
        a = generate_clip(scenario("chaotic"), seed=9)
        b = generate_clip(scenario("chaotic"), seed=9)
        np.testing.assert_array_equal(a.frames, b.frames)
        assert a.annotations == b.annotations

    def test_class_forcing(self):
        clip = generate_clip(scenario("slow"), seed=2, class_id=3)
        assert all(ann.class_id == 3 for ann in clip.annotations)

    def test_boxes_inside_frame(self):
        clip = generate_clip(scenario("chaotic"), seed=3, num_frames=40)
        for ann in clip.annotations:
            x0, y0, x1, y1 = ann.corners()
            assert -1e-9 <= x0 and x1 <= 64 + 1e-9
            assert -1e-9 <= y0 and y1 <= 64 + 1e-9

    def test_motion_actually_happens(self):
        clip = generate_clip(scenario("linear_motion"), seed=4)
        first = np.asarray(clip.annotations[0].box[:2])
        last = np.asarray(clip.annotations[-1].box[:2])
        assert np.hypot(*(last - first)) > 2.0

    def test_static_scene_keeps_object_put(self):
        clip = generate_clip(scenario("static"), seed=5)
        first = np.asarray(clip.annotations[0].box[:2])
        last = np.asarray(clip.annotations[-1].box[:2])
        assert np.hypot(*(last - first)) < 1e-9

    def test_occlusion_scenario_reports_occlusion(self):
        occluded = 0.0
        for seed in range(12):
            clip = generate_clip(scenario("occlusion"), seed=seed, num_frames=30)
            occluded = max(
                occluded, max(a.occluded_fraction for a in clip.annotations)
            )
        assert occluded > 0.1  # some clip shows a real crossing

    def test_camera_pan_moves_background_and_object_coherently(self):
        """With the camera panning, even a zero-velocity object must drift
        in frame coordinates (tracking-consistent physics)."""
        config = SceneConfig(
            name="pan_static_obj", speed=(0.0, 0.0), pan_speed=(2.0, 2.0)
        )
        clip = generate_clip(config, seed=6, num_frames=10)
        first = np.asarray(clip.annotations[0].box[:2])
        last = np.asarray(clip.annotations[-1].box[:2])
        assert np.hypot(*(last - first)) > 5.0

    def test_lighting_changes_brightness_without_motion(self):
        config = SceneConfig(
            name="light_only",
            speed=(0.0, 0.0),
            lighting_amplitude=0.2,
            noise_sigma=0.0,
        )
        clip = generate_clip(config, seed=7, num_frames=8)
        means = clip.frames.mean(axis=(1, 2))
        assert means.std() > 0.005

    def test_pairs_at_gap(self):
        clip = generate_clip(scenario("slow"), seed=8, num_frames=10)
        pairs = list(clip.pairs_at_gap(6))
        assert pairs[0] == (0, 6)
        assert len(pairs) == 4
        with pytest.raises(ValueError):
            list(clip.pairs_at_gap(0))

    def test_frame_gap_ms(self):
        clip = generate_clip(scenario("slow"), seed=8)
        assert clip.frame_gap_ms == pytest.approx(1000.0 / 30.0)


class TestDataset:
    def test_split_validation(self):
        with pytest.raises(ValueError):
            build_clipset("holdout")

    def test_splits_disjoint(self):
        train = build_clipset("train", clips_per_scenario=1, num_frames=4)
        test = build_clipset("test", clips_per_scenario=1, num_frames=4)
        assert not np.array_equal(train.clips[0].frames, test.clips[0].frames)

    def test_frames_and_labels_shapes(self):
        clipset = build_clipset("val", clips_per_scenario=1, num_frames=4)
        frames, labels, boxes = frames_and_labels(clipset)
        assert frames.shape == (len(clipset.clips) * 4, 1, 64, 64)
        assert labels.shape == (frames.shape[0],)
        assert boxes.shape == (frames.shape[0], 4)
        assert boxes.min() >= 0.0 and boxes.max() <= 1.0

    def test_class_coverage(self):
        clipset = build_clipset("train", clips_per_scenario=2, num_frames=2)
        _, labels, _ = frames_and_labels(clipset)
        assert set(np.unique(labels)) == set(range(NUM_CLASSES))

    def test_scenario_filter(self):
        clipset = build_clipset(
            "train", clips_per_scenario=2, scenarios=["slow"], num_frames=3
        )
        assert len(clipset.clips) == 2
        assert all(clip.scenario == "slow" for clip in clipset.clips)

    def test_num_frames_total(self):
        clipset = build_clipset("val", clips_per_scenario=1, num_frames=5)
        assert clipset.num_frames() == len(clipset.clips) * 5


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_any_seed_produces_valid_clip(seed):
    clip = generate_clip(scenario("chaotic"), seed=seed, num_frames=6)
    assert np.isfinite(clip.frames).all()
    assert clip.frames.min() >= 0.0 and clip.frames.max() <= 1.0
    for ann in clip.annotations:
        assert 0 <= ann.class_id < NUM_CLASSES
        assert ann.box[2] > 0 and ann.box[3] > 0
