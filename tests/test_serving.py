"""Serving-runtime tests: continuous batching, lanes, accounting.

The central contract mirrors the lockstep one, but is strictly harder:
clips join and leave the batch at arbitrary step boundaries, so every
clip must be bit-identical to its serial run *regardless of which
batch-mates shared its steps* — admission order, occupancy changes, and
evictions must never leak into results.
"""

import itertools

import numpy as np
import pytest

from repro.runtime import (
    ClipRequest,
    LaneRoutingError,
    PipelineSpec,
    ServerConfig,
    ServingRuntime,
    poisson_arrival_times,
    run_workload,
    synthetic_workload,
)

NETWORK = "mini_fasterm"


class FakeClock:
    """A manually advanced clock; each reading moves time forward a tick.

    The tick stands in for step execution time so admission interleaves
    with service deterministically, without real sleeps.
    """

    def __init__(self, tick: float = 0.001):
        self.now = 0.0
        self.tick = tick

    def __call__(self) -> float:
        self.now += self.tick
        return self.now


@pytest.fixture(scope="module")
def spec():
    spec = PipelineSpec(network=NETWORK)
    spec.warm()
    return spec


@pytest.fixture(scope="module")
def clips():
    return synthetic_workload(8, num_frames=6, base_seed=11)


@pytest.fixture(scope="module")
def serial_result(spec, clips):
    return run_workload(spec, clips, batch=False)


def _requests(clips, arrivals=None, **kwargs):
    arrivals = arrivals if arrivals is not None else itertools.repeat(0.0)
    return [
        ClipRequest(request_id=i, clip=clip, arrival_time=t, **kwargs)
        for i, (clip, t) in enumerate(zip(clips, arrivals))
    ]


def _assert_identical(report, reference):
    got = report.workload_result()
    assert got.matches(reference)
    for served, want in zip(got.results, reference.results):
        np.testing.assert_array_equal(served.outputs(), want.outputs())
        np.testing.assert_array_equal(served.key_mask(), want.key_mask())


class TestBitIdentity:
    def test_oversubscribed_server_matches_serial(self, spec, clips, serial_result):
        """More requests than slots: continuous refill, identical bits."""
        report = ServingRuntime(spec, ServerConfig(max_batch=3)).serve(_requests(clips))
        _assert_identical(report, serial_result)

    def test_single_slot_server_matches_serial(self, spec, clips, serial_result):
        """max_batch=1 degenerates to serial service, one clip at a time."""
        report = ServingRuntime(spec, ServerConfig(max_batch=1)).serve(_requests(clips))
        _assert_identical(report, serial_result)
        assert report.mean_occupancy == 1.0

    def test_staggered_arrivals_match_serial(self, spec, clips, serial_result):
        """Clips joining mid-flight (slots partially busy) change nothing."""
        arrivals = poisson_arrival_times(len(clips), rate=2000.0, seed=3)
        report = ServingRuntime(spec, ServerConfig(max_batch=4)).serve(
            _requests(clips, arrivals)
        )
        _assert_identical(report, serial_result)

    def test_ragged_lengths_evict_mid_flight(self, spec):
        """Short clips evict while long ones continue; refills join the
        surviving residents; every clip still bit-identical."""
        mixed = (
            synthetic_workload(2, num_frames=9, base_seed=1)
            + synthetic_workload(3, num_frames=3, base_seed=5)
            + synthetic_workload(2, num_frames=6, base_seed=8)
        )
        serial = run_workload(spec, mixed, batch=False)
        report = ServingRuntime(spec, ServerConfig(max_batch=3)).serve(_requests(mixed))
        _assert_identical(report, serial)

    def test_memoize_network_serving(self):
        """Classification (memoize mode) serves bit-identically too."""
        spec = PipelineSpec(network="mini_alexnet")
        spec.warm()
        clips = synthetic_workload(5, num_frames=5, base_seed=2)
        serial = run_workload(spec, clips, batch=False)
        report = ServingRuntime(spec, ServerConfig(max_batch=2)).serve(_requests(clips))
        _assert_identical(report, serial)

    def test_legacy_engine_serving(self, clips):
        """The legacy CNN engine serves per-clip inside the shared RFBME
        batch and stays bit-identical."""
        legacy = PipelineSpec(network=NETWORK, cnn_engine="legacy")
        serial = run_workload(legacy, clips, batch=False)
        report = ServingRuntime(legacy, ServerConfig(max_batch=3)).serve(_requests(clips))
        _assert_identical(report, serial)

    def test_full_width_server_matches_serial(self, spec):
        """The serving benchmark's max-batch-16 shape is covered by the
        gating suite too — large-occupancy identity must block a merge,
        not just turn a benchmark job amber."""
        clips = synthetic_workload(20, num_frames=4, base_seed=17)
        serial = run_workload(spec, clips, batch=False)
        report = ServingRuntime(spec, ServerConfig(max_batch=16)).serve(_requests(clips))
        _assert_identical(report, serial)

    def test_batch_mates_do_not_change_results(self, spec, clips):
        """The same clip served alone and served amid shuffled traffic
        produces the same bits — the serving invariant stated directly."""
        target = clips[0]
        alone = ServingRuntime(spec, ServerConfig(max_batch=4)).serve(_requests([target]))
        shuffled = list(clips[1:]) + [target]
        crowded = ServingRuntime(spec, ServerConfig(max_batch=4)).serve(_requests(shuffled))
        want = alone.records[0].result
        got = crowded.records[len(shuffled) - 1].result
        np.testing.assert_array_equal(got.outputs(), want.outputs())
        np.testing.assert_array_equal(got.key_mask(), want.key_mask())


class TestSharded:
    """serve_workers >= 2: lanes shard across a worker pool, and every
    served clip stays bit-identical to its serial single-clip run."""

    def test_single_lane_two_shards_match_serial(self, spec, clips,
                                                 serial_result):
        """One lane replicated into two shards (requests round-robin)."""
        runtime = ServingRuntime(
            spec, ServerConfig(max_batch=3, serve_workers=2, shard_backend="serial")
        )
        report = runtime.serve(_requests(clips))
        _assert_identical(report, serial_result)
        assert report.serve_workers == 2
        assert len(report.shards) == 2
        assert sum(shard.requests for shard in report.shards) == len(clips)

    def test_two_lanes_one_shard_each_match_serial(self, spec, clips,
                                                   serial_result):
        """Two lanes, two workers: each lane becomes exactly one shard."""
        runtime = ServingRuntime(
            {"cam0": spec, "cam1": spec},
            ServerConfig(max_batch=3,
            serve_workers=2,
            shard_backend="serial"),
        )
        requests = [
            ClipRequest(i, clip, lane=f"cam{i % 2}")
            for i, clip in enumerate(clips)
        ]
        report = runtime.serve(requests)
        _assert_identical(report, serial_result)
        assert {shard.lane for shard in report.shards} == {"cam0", "cam1"}
        assert all(shard.shard == 0 for shard in report.shards)

    def test_process_pool_shards_match_serial(self, spec):
        """The real multiprocess path: workers build their own network
        and plan (plan-per-worker), results aggregate bit-identically."""
        clips = synthetic_workload(4, num_frames=4, base_seed=23)
        serial = run_workload(spec, clips, batch=False)
        runtime = ServingRuntime(
            spec, ServerConfig(max_batch=2, serve_workers=2, shard_backend="process")
        )
        report = runtime.serve(_requests(clips))
        _assert_identical(report, serial)
        assert report.serve_workers == 2

    def test_sharded_ragged_and_staggered_match_serial(self, spec):
        """The PR 3 identity gauntlet on the sharded path: ragged clip
        lengths, staggered arrivals, mid-flight evictions per shard."""
        mixed = (
            synthetic_workload(2, num_frames=9, base_seed=1)
            + synthetic_workload(3, num_frames=3, base_seed=5)
            + synthetic_workload(2, num_frames=6, base_seed=8)
        )
        serial = run_workload(spec, mixed, batch=False)
        arrivals = poisson_arrival_times(len(mixed), rate=2000.0, seed=3)
        report = ServingRuntime(
            spec, ServerConfig(max_batch=2, serve_workers=2, shard_backend="serial")
        ).serve(_requests(mixed, arrivals))
        _assert_identical(report, serial)

    def test_sharded_records_in_submission_order(self, spec, clips):
        report = ServingRuntime(
            spec, ServerConfig(max_batch=2, serve_workers=2, shard_backend="serial")
        ).serve(_requests(clips))
        assert [record.request_id for record in report.records] == list(
            range(len(clips))
        )

    def test_shard_accounting_aggregates(self, spec, clips):
        report = ServingRuntime(
            spec, ServerConfig(max_batch=2, serve_workers=2, shard_backend="serial")
        ).serve(_requests(clips))
        assert report.total_frames == sum(len(clip) for clip in clips)
        assert report.steps == sum(shard.steps for shard in report.shards)
        # Concurrent model: the slowest shard bounds the run.
        assert report.wall_seconds == max(
            shard.wall_seconds for shard in report.shards
        )
        assert report.frames_per_second > 0
        rows = dict((row[0], row[1]) for row in report.summary_rows())
        assert rows["serve workers"] == 2

    def test_bad_serve_workers_rejected(self, spec):
        with pytest.raises(ValueError, match="serve_workers"):
            ServingRuntime(spec, ServerConfig(max_batch=2, serve_workers=0))

    def test_bad_shard_backend_rejected(self, spec):
        with pytest.raises(ValueError, match="backend"):
            ServingRuntime(spec, ServerConfig(max_batch=2, serve_workers=2,
                           shard_backend="gpu"))

    def test_thread_backend_refused(self, spec):
        """Thread shards would share one plan's scratch (the cached
        network is process-global) and break bit identity — refused at
        construction, not discovered as wrong bits."""
        with pytest.raises(ValueError, match="thread"):
            ServingRuntime(spec, ServerConfig(max_batch=2, serve_workers=2,
                           shard_backend="thread"))

    def test_injected_clock_reaches_inline_shards(self, spec, clips):
        """shard_backend='serial' honours the injected clock, so sharded
        latency accounting is deterministic in tests."""
        clock = FakeClock()
        report = ServingRuntime(
            spec, ServerConfig(max_batch=2, clock=clock, serve_workers=2,
            shard_backend="serial"),
        ).serve(_requests(clips[:4]))
        # FakeClock ticks 1ms per reading; real clocks would be ~µs.
        assert report.wall_seconds >= 0.001
        assert clock.now > 0.0
        for record in report.records:
            assert record.finish_time >= record.admit_time


class TestPipelinedServing:
    """pipeline_depth=2 serving: the worker overlaps the next step's
    RFBME/decide with the current CNN tail whenever slot membership is
    provably stable (full occupancy, no departure) and falls back to
    sequential steps everywhere else — the PR 3 identity gauntlet must
    hold bit-for-bit throughout."""

    @pytest.fixture(scope="class")
    def piped_spec(self):
        spec = PipelineSpec(network=NETWORK, pipeline_depth=2)
        spec.warm()
        return spec

    def test_oversubscribed_matches_serial(self, piped_spec, clips,
                                           serial_result):
        report = ServingRuntime(piped_spec, ServerConfig(max_batch=3)).serve(
            _requests(clips)
        )
        _assert_identical(report, serial_result)

    def test_ragged_and_staggered_match_serial(self, piped_spec):
        mixed = (
            synthetic_workload(2, num_frames=9, base_seed=1)
            + synthetic_workload(3, num_frames=3, base_seed=5)
            + synthetic_workload(2, num_frames=6, base_seed=8)
        )
        serial = run_workload(piped_spec, mixed, batch=False)
        arrivals = poisson_arrival_times(len(mixed), rate=2000.0, seed=3)
        report = ServingRuntime(piped_spec, ServerConfig(max_batch=3)).serve(
            _requests(mixed, arrivals)
        )
        _assert_identical(report, serial)

    def test_sharded_pipelined_matches_serial(self, piped_spec, clips,
                                              serial_result):
        report = ServingRuntime(
            piped_spec, ServerConfig(max_batch=3, serve_workers=2, shard_backend="serial")
        ).serve(_requests(clips))
        _assert_identical(report, serial_result)

    def test_runtime_reusable_across_serves(self, piped_spec, clips,
                                            serial_result):
        runtime = ServingRuntime(piped_spec, ServerConfig(max_batch=4))
        for _ in range(2):
            _assert_identical(runtime.serve(_requests(clips)), serial_result)
        runtime.close()  # joins any in-flight pipelined head

    def test_lockstep_like_run_scans_membership_once(self, piped_spec):
        """The stability predicate is memoised: a full-occupancy
        equal-length run pays one membership scan total, not one per
        step — the cached [occupancy, min-remaining] pair is decremented
        per churn-free step and only invalidated by membership events."""
        equal = synthetic_workload(3, num_frames=8, base_seed=21)
        serial = run_workload(piped_spec, equal, batch=False)
        runtime = ServingRuntime(piped_spec, ServerConfig(max_batch=3,
                                 clock=FakeClock()))
        report = runtime.serve(_requests(equal))
        _assert_identical(report, serial)
        assert runtime.lanes["default"]._membership_scans == 1

    def test_sequential_lane_never_scans_membership(self, spec, clips):
        """pipeline_depth=1 never consults the stability predicate."""
        runtime = ServingRuntime(spec, ServerConfig(max_batch=3, clock=FakeClock()))
        runtime.serve(_requests(clips))
        assert runtime.lanes["default"]._membership_scans == 0


class TestSpeculationMetrics:
    """ServingReport's rollback/engagement accounting, end to end."""

    @pytest.fixture(scope="class")
    def piped_spec(self):
        spec = PipelineSpec(network=NETWORK, pipeline_depth=2)
        spec.warm()
        return spec

    @pytest.fixture(scope="class")
    def churny(self):
        clips = (
            synthetic_workload(2, num_frames=8, base_seed=31)
            + synthetic_workload(3, num_frames=5, base_seed=47)
        )
        arrivals = [0.0, 0.0, 0.006, 0.012, 0.018]
        return clips, arrivals

    def test_stable_traffic_never_speculates(self, piped_spec):
        """Full occupancy + equal lengths: every overlap is definite, so
        the speculation counters stay zero while engagement is high."""
        equal = synthetic_workload(3, num_frames=8, base_seed=21)
        report = ServingRuntime(piped_spec, ServerConfig(max_batch=3,
                                clock=FakeClock())).serve(_requests(equal))
        assert report.speculated == 0
        assert report.rollbacks == 0
        assert report.rollback_rate == 0.0
        assert report.pipelined_steps > 0
        assert 0.0 < report.speculation_engagement <= 1.0

    def test_forced_churn_rolls_back(self, piped_spec, churny):
        clips, arrivals = churny
        report = ServingRuntime(piped_spec, ServerConfig(max_batch=3,
                                clock=FakeClock())).serve(
            _requests(clips, arrivals)
        )
        assert report.speculated > 0
        assert report.rollbacks > 0
        assert report.rollback_rate == report.rollbacks / report.speculated
        assert report.speculation_engagement == (
            report.pipelined_steps / report.steps
        )

    def test_summary_rows_surface_speculation(self, piped_spec, churny):
        clips, arrivals = churny
        report = ServingRuntime(piped_spec, ServerConfig(max_batch=3,
                                clock=FakeClock())).serve(
            _requests(clips, arrivals)
        )
        labels = [row[0] for row in report.summary_rows()]
        for label in ("pipelined steps", "speculation engagement",
                      "rollbacks", "rollback rate"):
            assert label in labels

    def test_sequential_report_omits_speculation_rows(self, spec, clips):
        report = ServingRuntime(spec, ServerConfig(max_batch=3)).serve(_requests(clips))
        assert report.pipelined_steps == 0
        assert report.speculated == 0
        assert report.speculation_engagement == 0.0
        labels = [row[0] for row in report.summary_rows()]
        assert "rollbacks" not in labels

    def test_shard_merge_sums_speculation_counters(self, piped_spec,
                                                   churny):
        """The metrics survive the shard-merge path: per-shard counters
        are carried on ShardInfo and summed into the lane report."""
        clips, arrivals = churny
        report = ServingRuntime(
            piped_spec, ServerConfig(max_batch=2, serve_workers=2,
            shard_backend="serial"),
        ).serve(_requests(clips, arrivals))
        assert len(report.shards) == 2
        for field in ("pipelined_steps", "speculated", "rollbacks"):
            assert getattr(report, field) == sum(
                getattr(shard, field) for shard in report.shards
            )
        assert report.pipelined_steps + report.speculated > 0


class TestSharedAdmission:
    """admission='shared': one admission queue per lane, every shard of
    the lane steals from it.  Assignment policy must never leak into
    results — the per-clip identity contract is the same as static's."""

    def test_inline_two_shards_match_serial(self, spec, clips,
                                            serial_result):
        report = ServingRuntime(
            spec, ServerConfig(max_batch=2, serve_workers=2, shard_backend="serial",
            admission="shared"),
        ).serve(_requests(clips))
        _assert_identical(report, serial_result)
        assert report.admission == "shared"
        assert len(report.shards) == 2
        assert sum(shard.requests for shard in report.shards) == len(clips)

    def test_two_lanes_shared_queues_match_serial(self, spec, clips,
                                                  serial_result):
        runtime = ServingRuntime(
            {"cam0": spec, "cam1": spec},
            ServerConfig(max_batch=3,
            serve_workers=2,
            shard_backend="serial",
            admission="shared"),
        )
        requests = [
            ClipRequest(i, clip, lane=f"cam{i % 2}")
            for i, clip in enumerate(clips)
        ]
        report = runtime.serve(requests)
        _assert_identical(report, serial_result)
        assert {shard.lane for shard in report.shards} == {"cam0", "cam1"}

    def test_idle_shard_steals_skewed_backlog(self, spec):
        """Interleaved long/short clips: static round-robin pins the
        longs on one shard; the shared queue spreads them, so no shard
        serves more than ~the balanced share of frames."""
        longs = synthetic_workload(4, num_frames=8, base_seed=3)
        shorts = synthetic_workload(4, num_frames=2, base_seed=19)
        clips = [clip for pair in zip(longs, shorts) for clip in pair]
        serial = run_workload(spec, clips, batch=False)
        report = ServingRuntime(
            spec, ServerConfig(max_batch=2, serve_workers=2, shard_backend="serial",
            admission="shared"),
        ).serve(_requests(clips))
        _assert_identical(report, serial)
        frames = sorted(shard.frames for shard in report.shards)
        total = sum(frames)
        # Static round-robin would put all 32 long frames on one shard
        # (32 vs 8); stealing keeps the split near even.
        assert frames[-1] < 0.75 * total

    def test_process_backend_stealing_matches_serial(self, spec):
        clips = synthetic_workload(4, num_frames=4, base_seed=23)
        serial = run_workload(spec, clips, batch=False)
        report = ServingRuntime(
            spec, ServerConfig(max_batch=2, serve_workers=2, shard_backend="process",
            admission="shared"),
        ).serve(_requests(clips))
        _assert_identical(report, serial)
        assert report.serve_workers == 2
        assert report.admission == "shared"

    def test_shared_accounting_aggregates(self, spec, clips):
        report = ServingRuntime(
            spec, ServerConfig(max_batch=2, serve_workers=2, shard_backend="serial",
            admission="shared"),
        ).serve(_requests(clips))
        assert report.total_frames == sum(len(clip) for clip in clips)
        assert report.steps == sum(shard.steps for shard in report.shards)
        assert report.wall_seconds == max(
            shard.wall_seconds for shard in report.shards
        )
        rows = dict((row[0], row[1]) for row in report.summary_rows())
        assert rows["admission"] == "shared"

    def test_records_in_submission_order(self, spec, clips):
        report = ServingRuntime(
            spec, ServerConfig(max_batch=2, serve_workers=2, shard_backend="serial",
            admission="shared"),
        ).serve(_requests(clips))
        assert [record.request_id for record in report.records] == list(
            range(len(clips))
        )

    def test_arrival_times_respected(self, spec, clips):
        report = ServingRuntime(
            spec, ServerConfig(max_batch=2, clock=FakeClock(), serve_workers=2,
            shard_backend="serial", admission="shared"),
        ).serve(_requests(clips[:4], [0.0, 0.0, 5.0, 5.0]))
        for record in report.records:
            assert record.admit_time >= record.arrival_time
            assert record.enqueue_latency >= 0.0

    def test_shard_budget_never_exceeds_serve_workers(self, spec, clips,
                                                      serial_result):
        """Shared shards run concurrently (the pool is sized to them),
        so the budget is dealt across lanes and capped at serve_workers
        — unlike static's per-lane ceil, which may queue excess tasks."""
        runtime = ServingRuntime(
            {"cam0": spec, "cam1": spec},
            ServerConfig(max_batch=2,
            serve_workers=3,
            shard_backend="serial",
            admission="shared"),
        )
        requests = [
            ClipRequest(i, clip, lane=f"cam{i % 2}")
            for i, clip in enumerate(clips)
        ]
        report = runtime.serve(requests)
        _assert_identical(report, serial_result)
        assert len(report.shards) == 3

    def test_shared_report_admission_field(self, spec, clips):
        """Every serve path stamps the configured admission mode."""
        in_process = ServingRuntime(
            spec, ServerConfig(max_batch=3, admission="shared")
        ).serve(_requests(clips[:2]))
        assert in_process.admission == "shared"

    def test_bad_admission_rejected(self, spec):
        with pytest.raises(ValueError, match="admission"):
            ServingRuntime(spec, ServerConfig(max_batch=2, admission="dynamic"))

    def test_shared_with_one_worker_is_in_process(self, spec, clips,
                                                  serial_result):
        """serve_workers=1 has a single worker per lane — shared and
        static admission coincide, served by the in-process loop."""
        report = ServingRuntime(
            spec, ServerConfig(max_batch=3, admission="shared")
        ).serve(_requests(clips))
        _assert_identical(report, serial_result)
        assert report.serve_workers == 1


class TestPercentiles:
    def test_latency_percentiles_keys_and_order(self, spec, clips):
        report = ServingRuntime(spec, ServerConfig(max_batch=2)).serve(_requests(clips))
        percentiles = report.latency_percentiles()
        assert sorted(percentiles) == [
            "enqueue_p50", "enqueue_p95", "enqueue_p99",
            "ttff_p50", "ttff_p95", "ttff_p99",
        ]
        assert percentiles["enqueue_p50"] <= percentiles["enqueue_p95"]
        assert percentiles["enqueue_p95"] <= percentiles["enqueue_p99"]
        assert percentiles["ttff_p50"] <= percentiles["ttff_p99"]

    def test_percentiles_surface_in_summary(self, spec, clips):
        report = ServingRuntime(spec, ServerConfig(max_batch=2)).serve(_requests(clips))
        labels = {row[0] for row in report.summary_rows()}
        for label in ("enqueue p50 ms", "enqueue p99 ms", "ttff p99 ms"):
            assert label in labels

    def test_empty_report_has_no_percentiles(self, spec):
        report = ServingRuntime(spec, ServerConfig(max_batch=2)).serve([])
        assert report.latency_percentiles() == {}

    def test_underscored_metric_names_round_trip(self, spec, clips,
                                                 monkeypatch):
        """Percentile keys are ``<metric>_p<NN>`` and a metric name may
        itself contain underscores: the summary split must peel only the
        *last* segment (a ``split("_")`` regression once rendered
        ``queue_wait_p50`` as ``queue wait_p50``)."""
        from repro.runtime.serving import ServingReport

        report = ServingRuntime(spec, ServerConfig(max_batch=2)).serve(
            _requests(clips)
        )
        monkeypatch.setattr(
            ServingReport, "latency_percentiles",
            lambda self: {"queue_wait_p50": 0.0015, "ttff_p99": 0.2},
        )
        rows = dict((row[0], row[1]) for row in report.summary_rows())
        assert rows["queue_wait p50 ms"] == 1.5
        assert rows["ttff p99 ms"] == 200.0

    def test_zero_completed_requests_explicit_empty(self):
        """A report with zero completed requests returns the explicit
        empty dict — never an np.percentile crash on empty samples —
        and every aggregate accessor stays well-defined."""
        from repro.runtime import ServingReport

        report = ServingReport(
            records=[], wall_seconds=0.0, idle_seconds=0.0, steps=0,
            max_batch=4,
        )
        assert report.latency_percentiles() == {}
        assert report.enqueue_latencies().shape == (0,)
        assert report.times_to_first_frame().shape == (0,)
        assert report.frames_per_second == 0.0
        assert report.mean_occupancy == 0.0
        labels = {row[0] for row in report.summary_rows()}
        assert "enqueue p50 ms" not in labels  # no fabricated zeros


class TestAdmission:
    def test_fifo_admission_within_lane(self, spec, clips):
        """With one slot, service order is arrival order."""
        runtime = ServingRuntime(spec, ServerConfig(max_batch=1, clock=FakeClock()))
        arrivals = [0.0, 0.0, 0.0, 0.0]
        report = runtime.serve(_requests(clips[:4], arrivals))
        finishes = [record.finish_time for record in report.records]
        assert finishes == sorted(finishes)
        admits = [record.admit_time for record in report.records]
        assert admits == sorted(admits)

    def test_arrival_times_respected(self, spec, clips):
        """A request is never admitted before it arrives."""
        arrivals = [0.0, 5.0, 10.0]
        report = ServingRuntime(spec, ServerConfig(max_batch=4, clock=FakeClock())).serve(
            _requests(clips[:3], arrivals)
        )
        for record in report.records:
            assert record.admit_time >= record.arrival_time
            assert record.enqueue_latency >= 0.0

    def test_idle_gaps_are_skipped_not_slept(self, spec, clips):
        """Widely spaced arrivals: virtual time jumps, busy time stays
        small, and the gap lands in idle_seconds."""
        arrivals = [0.0, 100.0]
        report = ServingRuntime(spec, ServerConfig(max_batch=2, clock=FakeClock())).serve(
            _requests(clips[:2], arrivals)
        )
        assert report.idle_seconds >= 99.0
        assert report.wall_seconds < 50.0
        _ = report.summary_rows()  # accounting renders

    def test_queue_wait_appears_in_enqueue_latency(self, spec, clips):
        """With one slot and simultaneous arrivals, later requests wait
        at least one full service time."""
        report = ServingRuntime(spec, ServerConfig(max_batch=1, clock=FakeClock())).serve(
            _requests(clips[:3])
        )
        latencies = report.enqueue_latencies()
        assert latencies[0] < latencies[1] < latencies[2]

    def test_records_in_submission_order(self, spec, clips):
        arrivals = [3.0, 0.0, 1.0]
        report = ServingRuntime(spec, ServerConfig(max_batch=1, clock=FakeClock())).serve(
            _requests(clips[:3], arrivals)
        )
        assert [record.request_id for record in report.records] == [0, 1, 2]


class TestLanes:
    def test_two_named_lanes_serve_their_traffic(self, clips):
        """Heterogeneous deployments: each lane batches only its own
        shape/network-compatible clips, results still serial-identical."""
        warp = PipelineSpec(network=NETWORK)
        memo = PipelineSpec(network="mini_alexnet")
        for lane_spec in (warp, memo):
            lane_spec.warm()
        runtime = ServingRuntime({"warp": warp, "memo": memo}, ServerConfig(max_batch=2))
        requests = [
            ClipRequest(i, clip, lane="warp" if i % 2 else "memo")
            for i, clip in enumerate(clips[:6])
        ]
        report = runtime.serve(requests)
        assert {record.lane for record in report.records} == {"warp", "memo"}
        for record, request in zip(report.records, requests):
            serial = run_workload(
                warp if request.lane == "warp" else memo,
                [request.clip],
                batch=False,
            )
            np.testing.assert_array_equal(
                record.result.outputs(), serial.results[0].outputs()
            )
            np.testing.assert_array_equal(
                record.result.key_mask(), serial.results[0].key_mask()
            )

    def test_shape_mismatch_rejected(self, spec, clips):
        runtime = ServingRuntime(spec, ServerConfig(max_batch=2))
        bad = ClipRequest(0, _shrunk(clips[0]), lane="default")
        with pytest.raises(ValueError, match="serves"):
            runtime.serve([bad])

    def test_unrouteable_shape_rejected(self, spec, clips):
        runtime = ServingRuntime(spec, ServerConfig(max_batch=2))
        with pytest.raises(ValueError, match="no lane serves"):
            runtime.serve([ClipRequest(0, _shrunk(clips[0]))])

    def test_ambiguous_shape_needs_explicit_lane(self, clips):
        """Two lanes with the same frame shape: routing by shape alone is
        refused, explicit lane names work."""
        specs = {
            "a": PipelineSpec(network=NETWORK),
            "b": PipelineSpec(network="mini_alexnet"),
        }
        runtime = ServingRuntime(specs, ServerConfig(max_batch=2))
        with pytest.raises(ValueError, match="set ClipRequest.lane"):
            runtime.serve([ClipRequest(0, clips[0])])
        report = runtime.serve([ClipRequest(0, clips[0], lane="a")])
        assert report.records[0].lane == "a"

    def test_unknown_lane_rejected(self, spec, clips):
        runtime = ServingRuntime(spec, ServerConfig(max_batch=2))
        with pytest.raises(KeyError):
            runtime.serve([ClipRequest(0, clips[0], lane="express")])

    def test_routing_errors_name_registered_lanes(self, clips):
        """Every routing failure is a LaneRoutingError whose message
        names each registered lane and its frame shape — never a bare
        KeyError a caller has to decode."""
        specs = {
            "warp": PipelineSpec(network=NETWORK),
            "memo": PipelineSpec(network="mini_alexnet"),
        }
        runtime = ServingRuntime(specs, ServerConfig(max_batch=2))
        shape = str(tuple(clips[0].frames.shape[1:]))

        with pytest.raises(LaneRoutingError) as unknown:
            runtime.serve([ClipRequest(0, clips[0], lane="express")])
        message = str(unknown.value)
        assert "unknown lane 'express'" in message
        assert "registered lanes" in message
        assert f"warp={shape}" in message and f"memo={shape}" in message

        with pytest.raises(LaneRoutingError) as unrouteable:
            runtime.serve([ClipRequest(0, _shrunk(clips[0]))])
        message = str(unrouteable.value)
        assert "no lane serves frame shape (32, 32)" in message
        assert f"warp={shape}" in message and f"memo={shape}" in message

        with pytest.raises(LaneRoutingError) as mismatch:
            runtime.serve([ClipRequest(7, _shrunk(clips[0]), lane="warp")])
        message = str(mismatch.value)
        assert "request 7 has (32, 32) frames" in message
        assert f"lane 'warp' serves {shape}" in message

    def test_routing_error_catchable_as_keyerror_and_valueerror(self, spec,
                                                                clips):
        """Back-compat: the old error types still catch the new one."""
        runtime = ServingRuntime(spec, ServerConfig(max_batch=2))
        bad = [ClipRequest(0, clips[0], lane="express")]
        for exc_type in (KeyError, ValueError, LaneRoutingError):
            with pytest.raises(exc_type):
                runtime.serve(bad)


class TestLifecycle:
    def test_close_shrinks_plan_and_clears_slots(self, spec, clips):
        runtime = ServingRuntime(spec, ServerConfig(max_batch=4))
        runtime.serve(_requests(clips[:4]))
        lane = runtime.lanes["default"]
        assert lane.plan.max_batch >= 4
        runtime.close()
        assert lane.plan.max_batch == 1
        assert not lane.has_active()
        # The runtime still serves correctly after a close (plan regrows).
        report = runtime.serve(_requests(clips[:2]))
        assert report.num_requests == 2

    def test_runtime_reusable_across_serve_calls(self, spec, clips, serial_result):
        runtime = ServingRuntime(spec, ServerConfig(max_batch=3))
        first = runtime.serve(_requests(clips))
        second = runtime.serve(_requests(clips))
        _assert_identical(first, serial_result)
        _assert_identical(second, serial_result)

    def test_empty_request_list(self, spec):
        report = ServingRuntime(spec, ServerConfig(max_batch=2)).serve([])
        assert report.num_requests == 0
        assert report.total_frames == 0
        assert report.steps == 0

    def test_occupancy_tracks_load(self, spec, clips):
        """All-at-once traffic onto ample slots runs near-full occupancy."""
        report = ServingRuntime(spec, ServerConfig(max_batch=4)).serve(_requests(clips[:4]))
        assert report.mean_occupancy == pytest.approx(4.0)

    def test_report_stats_consistent(self, spec, clips):
        report = ServingRuntime(spec, ServerConfig(max_batch=3)).serve(_requests(clips))
        assert report.total_frames == sum(len(clip) for clip in clips)
        assert report.frames_per_second > 0
        assert report.max_batch == 3
        for record in report.records:
            assert record.finish_time >= record.first_output_time
            assert record.first_output_time >= record.admit_time
            assert record.frames_per_second > 0


class TestValidation:
    def test_empty_clip_rejected(self, clips):
        empty = clips[0].frames[:0]
        with pytest.raises(ValueError, match="empty clip"):
            ClipRequest(0, _clip_with(clips[0], empty))

    def test_negative_arrival_rejected(self, clips):
        with pytest.raises(ValueError, match="arrival_time"):
            ClipRequest(0, clips[0], arrival_time=-1.0)

    def test_bad_max_batch_rejected(self, spec):
        with pytest.raises(ValueError):
            ServingRuntime(spec, ServerConfig(max_batch=0))

    def test_no_lanes_rejected(self):
        with pytest.raises(ValueError):
            ServingRuntime({})


def _shrunk(clip):
    """The same clip at a smaller resolution (no lane can serve it)."""
    return _clip_with(clip, clip.frames[:, :32, :32])


def _clip_with(clip, frames):
    from repro.video.generator import VideoClip

    return VideoClip(
        frames=frames,
        annotations=clip.annotations[: frames.shape[0]],
        scenario=clip.scenario,
    )
