"""Stage-graph seam tests.

The lockstep step used to be one monolithic function; it is now a
declared graph of pure stage functions over a picklable
:class:`~repro.core.stages.LaneState`.  Two seams must hold for that
refactor to be safe:

* each stage, invoked standalone on a lane state, reproduces the
  corresponding slice of the monolithic step bit for bit (same
  estimations, decisions, activations, outputs, records, and the same
  post-step executor state);
* lane state round-trips through pickle with identity preserved — a
  shipped-to-a-worker lane continues exactly where the original would.
"""

import pickle

import numpy as np
import pytest

from repro.core.stages import (
    LaneState,
    StepBatch,
    stage_cnn_prefix,
    stage_cnn_suffix,
    stage_decide,
    stage_record,
    stage_rfbme,
    stage_warp,
)
from repro.runtime import (
    ClipRequest,
    LaneWorker,
    PipelineSpec,
    Stage,
    StageGraph,
    execute_batched_step,
    frame_lifecycle_graph,
    synthetic_workload,
)

NETWORK = "mini_fasterm"


@pytest.fixture(scope="module")
def spec():
    # A static interval makes the key/pred mix at any step a pure
    # function of the staggered cursors below — deterministically mixed.
    spec = PipelineSpec(network=NETWORK, policy="static", interval=2)
    spec.warm()
    return spec


@pytest.fixture(scope="module")
def clips():
    return synthetic_workload(4, num_frames=8, base_seed=9)


def _mid_stream_worker(spec, clips) -> LaneWorker:
    """A lane mid-flight: clips admitted on consecutive steps.

    After the warm-up the four slots sit at cursors 4, 3, 2, 1 — so with
    a static interval of 2 the next step mixes key and predicted
    decisions across slots, exercising every stage at once.
    """
    worker = LaneWorker("default", spec, capacity=len(clips))
    for i, clip in enumerate(clips):
        worker.admit(i, ClipRequest(request_id=i, clip=clip), now=0.0)
        worker.step()
    return worker


def _clone(state: LaneState) -> LaneState:
    """Pickle round-trip — the clone mechanism sharded serving uses."""
    return pickle.loads(pickle.dumps(state))


def _next_batch(state: LaneState, clips) -> StepBatch:
    positions = state.occupied()
    return StepBatch(
        state=state,
        positions=positions,
        frames=[clips[i].frames[state.slots[i].cursor] for i in positions],
        plan=state.plan.resolve(len(positions)),
    )


def _assert_estimations_equal(got, want):
    assert len(got) == len(want)
    for a, b in zip(got, want):
        if b is None:
            assert a is None
            continue
        np.testing.assert_array_equal(a.field.data, b.field.data)
        assert a.total_match_error == b.total_match_error
        assert a.ops == b.ops


class TestStageSlices:
    """Each stage standalone == its slice of the monolithic step."""

    def test_stages_reproduce_monolithic_step(self, spec, clips):
        worker = _mid_stream_worker(spec, clips)
        cursors = [slot.cursor for slot in worker.state.slots]
        assert cursors == [4, 3, 2, 1]  # staggered → mixed decisions

        mono_state = _clone(worker.state)
        stage_state = _clone(worker.state)

        # Monolithic reference: execute_batched_step over the same
        # entries (it takes estimations precomputed, exactly as the
        # serving loop used to hand them over).
        mono_batch = _next_batch(mono_state, clips)
        mono_est = stage_rfbme(mono_batch)
        entries = [
            (
                mono_batch.slot(k).executor,
                mono_batch.slot(k).policy,
                mono_batch.frames[k],
                mono_batch.slot(k).cursor,
                mono_est[k],
            )
            for k in range(len(mono_batch))
        ]
        mono_records = execute_batched_step(mono_batch.plan, entries)

        # Stage-by-stage on an independent clone.
        batch = _next_batch(stage_state, clips)
        estimations = stage_rfbme(batch)
        _assert_estimations_equal(estimations, mono_est)

        decisions = stage_decide(batch, estimations)
        assert decisions == [r.is_key for r in mono_records]
        assert True in decisions and False in decisions  # genuinely mixed

        key_acts = stage_cnn_prefix(batch, decisions)
        pred_acts = stage_warp(batch, decisions, estimations)
        assert key_acts is not None and pred_acts is not None
        outputs = stage_cnn_suffix(batch, decisions, key_acts, pred_acts)
        records = stage_record(batch, decisions, estimations, outputs)

        for got, want in zip(records, mono_records):
            assert got.index == want.index
            assert got.is_key == want.is_key
            np.testing.assert_array_equal(got.output, want.output)
            assert got.estimation_ops == want.estimation_ops
            assert got.match_error == want.match_error

        # Post-step executor state matches too: key slots adopted the
        # same pixels/activations in both shapes.
        for k in range(len(batch)):
            if not decisions[k]:
                continue
            np.testing.assert_array_equal(
                batch.slot(k).executor.stored_pixels(),
                mono_batch.slot(k).executor.stored_pixels(),
            )
            np.testing.assert_array_equal(
                batch.slot(k).executor.key_activation,
                mono_batch.slot(k).executor.key_activation,
            )

    def test_prefix_and_warp_are_optional_stages(self, spec, clips):
        """All-key and all-pred steps skip the other branch cleanly."""
        worker = _mid_stream_worker(spec, clips)
        state = _clone(worker.state)
        batch = _next_batch(state, clips)
        estimations = stage_rfbme(batch)
        assert stage_cnn_prefix(batch, [False] * len(batch)) is None
        assert stage_warp(batch, [True] * len(batch), estimations) is None


class TestLaneStatePickle:
    def test_round_trip_preserves_identity(self, spec, clips):
        """Continuing a pickled lane equals continuing the original."""
        worker = _mid_stream_worker(spec, clips)
        original = worker.state
        restored = _clone(original)

        graph = frame_lifecycle_graph(planned=True)
        for _ in range(3):
            batches = [_next_batch(s, clips) for s in (original, restored)]
            envs = [graph.run(b) for b in batches]
            for got, want in zip(envs[1]["records"], envs[0]["records"]):
                assert got.is_key == want.is_key
                np.testing.assert_array_equal(got.output, want.output)
                assert got.estimation_ops == want.estimation_ops
            for state in (original, restored):
                for i in state.occupied():
                    state.slots[i].cursor += 1

    def test_round_trip_drops_heavy_state_and_shares_network(self, spec, clips):
        worker = _mid_stream_worker(spec, clips)
        restored = _clone(worker.state)
        # Engines and compiled plans are rebuilt lazily, never pickled.
        assert all(
            slot.executor._engine is None for slot in restored.slots
        )
        networks = {id(slot.executor.network) for slot in restored.slots}
        assert len(networks) == 1  # one shared network, not N copies
        assert id(restored.plan.network) in networks
        assert restored.plan.network._plans == {}
        # The restored plan handle resolves and serves.
        assert restored.plan.resolve(2).max_batch >= 2

    def test_cursors_and_stored_keys_survive(self, spec, clips):
        worker = _mid_stream_worker(spec, clips)
        restored = _clone(worker.state)
        for got, want in zip(restored.slots, worker.state.slots):
            assert got.cursor == want.cursor
            np.testing.assert_array_equal(
                got.executor.stored_pixels(), want.executor.stored_pixels()
            )


class TestStageGraphValidation:
    def test_declaration_order_is_execution_order(self):
        graph = frame_lifecycle_graph(planned=True)
        names = [stage.name for stage in graph]
        assert names == [
            "rfbme", "decide", "cnn_prefix", "warp", "cnn_suffix", "record",
        ]
        assert "outputs" in graph.produces

    def test_legacy_graph_shape(self):
        names = [stage.name for stage in frame_lifecycle_graph(planned=False)]
        assert names == ["rfbme", "decide", "legacy_cnn", "record"]

    def test_unproduced_input_rejected(self):
        with pytest.raises(ValueError, match="consumes"):
            StageGraph(
                [Stage("a", lambda batch, x: x, ("batch", "missing"), ("y",))]
            )

    def test_redefined_output_rejected(self):
        ok = Stage("a", lambda batch: 1, ("batch",), ("x",))
        dup = Stage("b", lambda batch: 2, ("batch",), ("x",))
        with pytest.raises(ValueError, match="redefine"):
            StageGraph([ok, dup])

    def test_no_outputs_rejected(self):
        with pytest.raises(ValueError, match="no outputs"):
            Stage("a", lambda batch: 1, ("batch",), ())

    def test_seeded_stage_is_skipped(self):
        calls = []

        def produce(batch):
            calls.append("produce")
            return 1

        graph = StageGraph(
            [
                Stage("produce", produce, ("batch",), ("x",)),
                Stage("consume", lambda batch, x: x + 1, ("batch", "x"), ("y",)),
            ]
        )
        env = graph.run(batch=None, seed={"x": 41})
        assert env["y"] == 42
        assert calls == []  # the seeded stage never ran
