"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestCLI:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "mini_fasterm" in out
        assert "camera_pan" in out

    def test_firstorder(self, capsys):
        assert main(["firstorder", "--network", "faster16"]) == 0
        out = capsys.readouterr().out
        assert "conv5_3" in out
        assert "1.71e+11" in out

    def test_hardware(self, capsys):
        assert main(["hardware", "--network", "fasterm"]) == 0
        out = capsys.readouterr().out
        assert "EVA2 area" in out

    def test_run_static_interval(self, capsys):
        assert main([
            "run", "--scenario", "slow", "--seed", "1",
            "--frames", "6", "--interval", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "key frames: 2/6" in out

    def test_run_adaptive(self, capsys):
        assert main([
            "run", "--scenario", "static", "--seed", "1",
            "--frames", "5", "--threshold", "5.0",
        ]) == 0
        out = capsys.readouterr().out
        assert "key frames: 1/5" in out

    def test_run_workload_summary(self, capsys):
        assert main([
            "run", "--clips", "2", "--batch", "--frames", "4",
            "--scenario", "static",
        ]) == 0
        out = capsys.readouterr().out
        assert "lockstep" in out
        assert "frames/s" in out

    def test_serve_summary_and_verify(self, capsys):
        assert main([
            "serve", "--clips", "4", "--frames", "4", "--max-batch", "2",
            "--arrival-rate", "500", "--scenario", "static", "--verify",
        ]) == 0
        out = capsys.readouterr().out
        assert "serving" in out
        assert "mean occupancy" in out
        assert "bit-identical to its serial run: yes" in out

    def test_serve_sharded_verify(self, capsys):
        assert main([
            "serve", "--clips", "4", "--frames", "4", "--max-batch", "2",
            "--arrival-rate", "500", "--scenario", "static",
            "--serve-workers", "2", "--shard-backend", "serial", "--verify",
        ]) == 0
        out = capsys.readouterr().out
        assert "serve workers" in out
        assert "shard default/" in out
        assert "enqueue p99 ms" in out
        assert "bit-identical to its serial run: yes" in out

    def test_run_pipelined_workload(self, capsys):
        assert main([
            "run", "--clips", "3", "--batch", "--frames", "5",
            "--scenario", "static", "--pipeline-depth", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "lockstep" in out

    def test_serve_shared_admission_verify(self, capsys):
        assert main([
            "serve", "--clips", "4", "--frames", "4", "--max-batch", "2",
            "--arrival-rate", "500", "--scenario", "static",
            "--serve-workers", "2", "--shard-backend", "serial",
            "--admission", "shared", "--verify",
        ]) == 0
        out = capsys.readouterr().out
        assert "admission" in out
        assert "shared" in out
        assert "bit-identical to its serial run: yes" in out

    def test_serve_pipelined_verify(self, capsys):
        assert main([
            "serve", "--clips", "4", "--frames", "4", "--max-batch", "2",
            "--arrival-rate", "500", "--scenario", "static",
            "--pipeline-depth", "2", "--verify",
        ]) == 0
        out = capsys.readouterr().out
        assert "bit-identical to its serial run: yes" in out

    def test_bad_pipeline_depth_rejected(self, capsys):
        assert main(["run", "--clips", "2", "--batch",
                     "--pipeline-depth", "0"]) == 2
        assert "--pipeline-depth" in capsys.readouterr().err
        assert main(["serve", "--pipeline-depth", "0"]) == 2
        assert "--pipeline-depth" in capsys.readouterr().err

    def test_serve_bad_serve_workers_rejected(self, capsys):
        assert main(["serve", "--serve-workers", "0"]) == 2
        assert "--serve-workers" in capsys.readouterr().err

    def test_serve_bad_arrival_rate_rejected(self, capsys):
        assert main(["serve", "--arrival-rate", "0"]) == 2
        assert "--arrival-rate" in capsys.readouterr().err

    def test_serve_bad_max_batch_rejected(self, capsys):
        assert main(["serve", "--max-batch", "0"]) == 2
        assert "--max-batch" in capsys.readouterr().err

    def test_workload_flags_require_multiple_clips(self, capsys):
        assert main(["run", "--batch"]) == 2
        assert "--clips" in capsys.readouterr().err

    def test_zero_clips_rejected(self, capsys):
        assert main(["run", "--clips", "0"]) == 2
        assert "--clips" in capsys.readouterr().err

    def test_batch_and_workers_conflict(self, capsys):
        assert main(["run", "--clips", "4", "--batch", "--workers", "2"]) == 2
        assert "pick one" in capsys.readouterr().err

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["teleport"])

    def test_bad_network_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["hardware", "--network", "resnet"])
