"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestCLI:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "mini_fasterm" in out
        assert "camera_pan" in out

    def test_firstorder(self, capsys):
        assert main(["firstorder", "--network", "faster16"]) == 0
        out = capsys.readouterr().out
        assert "conv5_3" in out
        assert "1.71e+11" in out

    def test_hardware(self, capsys):
        assert main(["hardware", "--network", "fasterm"]) == 0
        out = capsys.readouterr().out
        assert "EVA2 area" in out

    def test_run_static_interval(self, capsys):
        assert main([
            "run", "--scenario", "slow", "--seed", "1",
            "--frames", "6", "--interval", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "key frames: 2/6" in out

    def test_run_adaptive(self, capsys):
        assert main([
            "run", "--scenario", "static", "--seed", "1",
            "--frames", "5", "--threshold", "5.0",
        ]) == 0
        out = capsys.readouterr().out
        assert "key frames: 1/5" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["teleport"])

    def test_bad_network_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["hardware", "--network", "resnet"])
