"""Churn-fuzz differential harness: speculative serving vs ground truth.

Each seed derives a complete serving scenario — clip count, ragged
lengths (forcing mid-flight evictions), a scenario mix with hard scene
cuts spliced at step boundaries, lane capacity, and a bursty Poisson
arrival trace (forcing mid-flight admissions) — then serves it three
ways: per-clip serial (ground truth), sequential serving
(``pipeline_depth=1``), and speculative pipelined serving
(``pipeline_depth=2``, ``speculate=True``).  Every path must produce
bit-identical frames, key-frame decisions, and per-clip RFBME op counts.
A failing seed is a real bug in the checkpoint/rollback machinery, never
fuzz noise: everything is deterministic given the seed.

CI hooks:

* ``REPRO_FUZZ_SEEDS`` — space/comma-separated seed list overriding the
  default set, so CI can matrix one seed per job.
* ``REPRO_FUZZ_TRACE_DIR`` — when set, each scenario is dumped there as
  JSON *before* the assertions run, so the trace of a failing seed
  survives as an artifact.
"""

import itertools
import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.core.sad_kernel import get_kernel
from repro.runtime import (
    ClipRequest,
    PipelineSpec,
    ServerConfig,
    ServingRuntime,
    run_workload,
    synthetic_workload,
)
from repro.video import generate_clip, scenario, scenario_names
from repro.video.generator import VideoClip

NETWORK = "mini_fasterm"
DEFAULT_SEEDS = (0, 1, 2, 3)
_POLICIES = ("match_error", "static", "motion")


def _fuzz_seeds():
    env = os.environ.get("REPRO_FUZZ_SEEDS", "").replace(",", " ").split()
    return tuple(int(token) for token in env) if env else DEFAULT_SEEDS


#: RFBME host lanes the differential runs in; the compiled lane skips
#: where the kernel is unavailable (e.g. under REPRO_FORCE_NUMPY=1).
LANES = [
    pytest.param(
        "kernel",
        marks=pytest.mark.skipif(
            get_kernel() is None, reason="compiled SAD kernel unavailable"
        ),
    ),
    pytest.param("batched"),
]


class FakeClock:
    """Manually advanced clock (see test_serving): each reading moves
    time one tick, so admission interleaves with service deterministically."""

    def __init__(self, tick: float = 0.001):
        self.now = 0.0
        self.tick = tick

    def __call__(self) -> float:
        self.now += self.tick
        return self.now


def _requests(clips, arrivals=None):
    arrivals = arrivals if arrivals is not None else itertools.repeat(0.0)
    return [
        ClipRequest(request_id=i, clip=clip, arrival_time=t)
        for i, (clip, t) in enumerate(zip(clips, arrivals))
    ]


def _spliced_clip(first, second, seed, num_frames):
    """A clip with a hard scene cut: two scenarios spliced mid-stream.

    The cut lands on a frame boundary — exactly where serving admits and
    evicts — so adaptive policies flip to a key frame right where the
    speculative head may already be in flight."""
    cut = num_frames // 2
    head = generate_clip(scenario(first), seed=seed, num_frames=cut)
    tail = generate_clip(
        scenario(second), seed=seed + 1, num_frames=num_frames - cut
    )
    return VideoClip(
        frames=np.concatenate([head.frames, tail.frames]),
        annotations=list(head.annotations) + list(tail.annotations),
        scenario=f"{first}+cut:{second}",
    )


def _make_scenario(seed):
    """Derive one full serving scenario from a seed (pure function)."""
    rng = np.random.default_rng(seed)
    names = list(scenario_names())
    num_clips = int(rng.integers(6, 10))
    capacity = int(rng.integers(2, 5))
    policy = _POLICIES[int(rng.integers(len(_POLICIES)))]

    clips = []
    clip_meta = []
    for i in range(num_clips):
        num_frames = int(rng.integers(2, 9))
        name = names[int(rng.integers(len(names)))]
        clip_seed = int(rng.integers(0, 10_000))
        if num_frames >= 4 and rng.random() < 0.35:
            other = names[int(rng.integers(len(names)))]
            clip = _spliced_clip(name, other, clip_seed, num_frames)
        else:
            clip = generate_clip(
                scenario(name), seed=clip_seed, num_frames=num_frames
            )
        clips.append(clip)
        clip_meta.append(
            {"scenario": clip.scenario, "seed": clip_seed, "frames": num_frames}
        )

    # Bursty Poisson trace: exponential gaps sized against the FakeClock
    # tick, with occasional zero-gap bursts so several admissions hit
    # one step boundary at once.
    arrivals = []
    t = 0.0
    while len(arrivals) < num_clips:
        t += float(rng.exponential(0.004))
        burst = 1 + int(rng.integers(0, 3)) if rng.random() < 0.35 else 1
        for _ in range(min(burst, num_clips - len(arrivals))):
            arrivals.append(round(t, 6))

    return {
        "seed": seed,
        "capacity": capacity,
        "policy": policy,
        "clips": clip_meta,
        "arrivals": arrivals,
    }, clips


def _dump_trace(label, trace):
    trace_dir = os.environ.get("REPRO_FUZZ_TRACE_DIR")
    if not trace_dir:
        return
    path = Path(trace_dir)
    path.mkdir(parents=True, exist_ok=True)
    (path / f"{label}.json").write_text(json.dumps(trace, indent=2))


def _spec(backend, policy, depth, speculate=True):
    spec = PipelineSpec(
        network=NETWORK,
        policy=policy,
        rfbme_backend=backend,
        pipeline_depth=depth,
        speculate=speculate,
    )
    spec.warm()
    return spec


def _serve(spec, clips, arrivals, capacity):
    runtime = ServingRuntime(spec, ServerConfig(max_batch=capacity, clock=FakeClock()))
    return runtime.serve(_requests(clips, arrivals))


def _assert_identical(report, reference):
    """Bit-identity per clip: outputs, key decisions, and op counts."""
    got = report.workload_result()
    assert got.matches(reference)
    for served, want in zip(got.results, reference.results):
        np.testing.assert_array_equal(served.outputs(), want.outputs())
        np.testing.assert_array_equal(served.key_mask(), want.key_mask())
        assert _clip_ops(served) == _clip_ops(want)


def _clip_ops(result):
    return sum(
        record.estimation_ops.total
        for record in result.records
        if record.estimation_ops is not None
    )


@pytest.mark.parametrize("backend", LANES)
@pytest.mark.parametrize("seed", _fuzz_seeds())
def test_churn_fuzz_differential(seed, backend):
    """The tentpole contract, fuzzed: a seeded churn trace served
    speculatively is bit-identical to its sequential and serial runs."""
    trace, clips = _make_scenario(seed)
    _dump_trace(f"fuzz_seed{seed}_{backend}", trace)

    sequential = _spec(backend, trace["policy"], depth=1)
    serial = run_workload(sequential, clips, batch=False)

    seq_report = _serve(sequential, clips, trace["arrivals"], trace["capacity"])
    _assert_identical(seq_report, serial)
    assert seq_report.speculated == 0 and seq_report.rollbacks == 0

    speculative = _spec(backend, trace["policy"], depth=2, speculate=True)
    spec_report = _serve(
        speculative, clips, trace["arrivals"], trace["capacity"]
    )
    _assert_identical(spec_report, serial)
    # The machinery must actually engage: with churn traffic, every step
    # with a surviving resident launches a head (definite or speculative).
    assert spec_report.pipelined_steps + spec_report.speculated > 0
    assert 0.0 <= spec_report.rollback_rate <= 1.0


class TestForcedChurn:
    """Deterministic worst-case trace: speculation is forced to
    mispredict, so the rollback path itself is what's under test."""

    @pytest.fixture(scope="class")
    def churn_trace(self):
        # Capacity 3 but only 2 residents at t=0: never provably stable,
        # so every launch is speculative; the late wave of admissions
        # lands mid-flight and invalidates in-flight heads.
        early = synthetic_workload(2, num_frames=8, base_seed=31)
        late = synthetic_workload(3, num_frames=5, base_seed=47)
        clips = early + late
        arrivals = [0.0, 0.0, 0.006, 0.012, 0.018]
        return clips, arrivals

    def test_rollbacks_fire_and_identity_holds(self, churn_trace):
        clips, arrivals = churn_trace
        spec = _spec(None, "match_error", depth=2, speculate=True)
        serial = run_workload(spec, clips, batch=False)
        report = _serve(spec, clips, arrivals, capacity=3)
        _assert_identical(report, serial)
        assert report.speculated > 0
        assert report.rollbacks > 0
        assert report.rollback_rate > 0.0
        assert report.speculation_engagement > 0.0

    def test_rollback_events_are_named(self, churn_trace):
        clips, arrivals = churn_trace
        spec = _spec(None, "match_error", depth=2, speculate=True)
        runtime = ServingRuntime(spec, ServerConfig(max_batch=3, clock=FakeClock()))
        runtime.serve(_requests(clips, arrivals))
        events = runtime.lanes["default"].executor.stats.events
        assert events, "forced-churn trace produced no rollback events"
        assert {event.reason for event in events} <= {
            "membership-mismatch",
            "abandoned",
        }
        assert all(event.step > 0 for event in events)
        assert any(event.positions for event in events)

    def test_speculation_off_restores_stable_only_overlap(self, churn_trace):
        """--no-speculate is the PR 5 behaviour: identical bits, zero
        speculative launches, zero rollbacks."""
        clips, arrivals = churn_trace
        spec = _spec(None, "match_error", depth=2, speculate=False)
        serial = run_workload(spec, clips, batch=False)
        report = _serve(spec, clips, arrivals, capacity=3)
        _assert_identical(report, serial)
        assert report.speculated == 0
        assert report.rollbacks == 0

    def test_legacy_engine_falls_back_to_stable_overlap(self, churn_trace):
        """The legacy graph's head runs per-clip CNNs (un-checkpointable
        key state), so the worker must refuse to speculate on it and
        serve the churn trace with PR 5's stable-only overlap instead."""
        clips, arrivals = churn_trace
        spec = PipelineSpec(
            network=NETWORK, cnn_engine="legacy", pipeline_depth=2
        )
        serial = run_workload(spec, clips, batch=False)
        report = _serve(spec, clips, arrivals, capacity=3)
        _assert_identical(report, serial)
        assert report.speculated == 0
        assert report.rollbacks == 0

    def test_static_policy_counter_survives_rollback(self, churn_trace):
        """StaticPolicy's interval counter is pure policy state — a
        missed rollback would shift every later key decision, so this
        pins the checkpoint contract on the most state-sensitive policy."""
        clips, arrivals = churn_trace
        spec = _spec(None, "static", depth=2, speculate=True)
        serial = run_workload(spec, clips, batch=False)
        report = _serve(spec, clips, arrivals, capacity=3)
        _assert_identical(report, serial)
        assert report.rollbacks > 0
