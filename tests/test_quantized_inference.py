"""Quantized inference lane tests: int8 / q16 plan families.

The quantized families trade the float lanes' bit-identity contract for
a documented tolerance contract (``plan.tolerance``), but keep every
*structural* contract the runtime relies on: batch invariance, lossless
prefix/suffix round trips, ``reserve``/``shrink``, plan-cache and
weight-version behaviour, and — the one that makes sharded serving
sound — full determinism: two processes (or the compiled-kernel and
forced-NumPy lanes) compiling the same network at the same dtype must
derive bit-identical Q-formats, weight snapshots, and outputs.
"""

import hashlib
import os
import pickle
import subprocess
import sys

import numpy as np
import pytest

from repro.nn import InferencePlan
from repro.nn.inference import (
    QUANT_DTYPES,
    quantized_savings,
    resolve_plan_dtype,
)
from repro.nn.layers import Conv2d, Flatten, Linear, ReLU
from repro.nn.network import Network
from repro.nn.quantize import (
    QFormat,
    QuantTolerance,
    calibrate_layer,
    choose_format,
    quantize_activation,
)
from repro.nn.train import get_trained_network

QUANT = ("int8", "q16")


@pytest.fixture(scope="module")
def net():
    return get_trained_network("mini_fasterm")


@pytest.fixture(scope="module")
def frames():
    rng = np.random.default_rng(42)
    return rng.random((8, 1, 64, 64))


# -------------------------------------------------------------------- #
# satellite: one consistently-worded dtype error


class TestDtypeErrors:
    """Every rejection path names all supported dtypes identically."""

    BAD = ["float16", "int7", np.int64, np.dtype("complex128")]

    @pytest.mark.parametrize("bad", BAD, ids=str)
    def test_resolve_names_all_supported(self, bad):
        with pytest.raises(ValueError) as err:
            resolve_plan_dtype(bad)
        for family in ("float32", "float64", "int8", "q16"):
            assert family in str(err.value)

    def test_messages_identical_across_entry_points(self, net):
        def message(fn, *args, **kwargs):
            with pytest.raises(ValueError) as err:
                fn(*args, **kwargs)
            return str(err.value).replace(repr("float16"), "<got>").replace(
                repr(np.int64), "<got>"
            )

        assert (
            message(resolve_plan_dtype, "float16")
            == message(resolve_plan_dtype, np.int64)
            == message(InferencePlan, net, max_batch=1, dtype="float16")
        )


# -------------------------------------------------------------------- #
# satellite: empty-tensor quantization stats


class TestEmptyTensors:
    def test_quantize_activation_empty(self):
        fmt = QFormat(int_bits=3, frac_bits=4)
        quantized, stats = quantize_activation(np.empty((0, 4)), fmt)
        assert quantized.shape == (0, 4)
        assert stats.max_abs_error == 0.0
        assert stats.mean_abs_error == 0.0
        assert stats.saturated_fraction == 0.0

    def test_choose_format_empty(self):
        fmt = choose_format(np.empty(0), total_bits=8)
        assert fmt.total_bits == 8
        assert fmt.int_bits == 0


# -------------------------------------------------------------------- #
# tolerance contract


class TestToleranceContract:
    @pytest.mark.parametrize("dtype", QUANT)
    def test_plan_publishes_contract(self, net, dtype):
        plan = net.inference_plan(max_batch=2, dtype=dtype)
        assert isinstance(plan.tolerance, QuantTolerance)
        assert plan.tolerance.max_abs_error > 0
        assert plan.tolerance.top1_agreement == 0.98
        # Every weighted layer got calibrated, none fell back on the
        # trained zoo network (its dynamic range is tame).
        weighted = [
            layer.name for layer in net.layers
            if isinstance(layer, (Conv2d, Linear))
        ]
        assert sorted(plan.calibration) == sorted(weighted)
        assert plan.quant_fallback_layers == ()

    @pytest.mark.parametrize("dtype", QUANT)
    def test_outputs_within_bound(self, net, frames, dtype):
        plan = net.inference_plan(max_batch=8, dtype=dtype)
        out = plan.run(frames)
        ref = net.forward(frames)
        assert out.dtype == np.float32
        err = float(np.max(np.abs(out.astype(np.float64) - ref)))
        assert err <= plan.tolerance.max_abs_error

    def test_q16_is_tighter_than_int8(self, net):
        p8 = net.inference_plan(max_batch=1, dtype="int8")
        p16 = net.inference_plan(max_batch=1, dtype="q16")
        assert p16.tolerance.max_abs_error < p8.tolerance.max_abs_error


# -------------------------------------------------------------------- #
# structural contracts shared with the float lanes


class TestStructure:
    @pytest.mark.parametrize("dtype", QUANT)
    def test_batch_invariance(self, net, frames, dtype):
        """Row s of a batched run is bitwise the batch-1 run of sample s
        — the property that lets lockstep/serving batch across clips."""
        plan = net.inference_plan(max_batch=8, dtype=dtype)
        batched = plan.run(frames)
        for s in range(8):
            np.testing.assert_array_equal(
                batched[s], plan.run(frames[s : s + 1])[0]
            )

    @pytest.mark.parametrize("dtype", QUANT)
    def test_prefix_suffix_roundtrip_exact(self, net, frames, dtype):
        """Splitting at the AMC target is lossless: raws fit float32's
        mantissa and the scales are powers of two, so prefix+suffix is
        bitwise the whole run."""
        plan = net.inference_plan(max_batch=4, dtype=dtype)
        target = net.last_spatial_layer()
        whole = plan.run(frames[:4])
        split = plan.run_suffix(plan.run_prefix(frames[:4], target), target)
        np.testing.assert_array_equal(whole, split)

    @pytest.mark.parametrize("dtype", QUANT)
    def test_reserve_shrink_bit_identical(self, net, frames, dtype):
        plan = InferencePlan(net, max_batch=2, dtype=dtype)
        want = plan.run(frames[:2]).copy()
        plan.reserve(8)
        out = plan.run(frames)
        np.testing.assert_array_equal(out[:2], want)
        plan.shrink(2)
        np.testing.assert_array_equal(plan.run(frames[:2]), want)

    def test_plan_cache_keyed_by_family(self, net):
        p8 = net.inference_plan(max_batch=1, dtype="int8")
        assert net.inference_plan(max_batch=1, dtype="int8") is p8
        assert net.inference_plan(max_batch=1, dtype="q16") is not p8

    def test_weight_swap_invalidates(self):
        net = get_trained_network("mini_fasterm")
        plan = net.inference_plan(max_batch=1, dtype="int8")
        version = net.weight_version
        net.load_state_dict(net.state_dict())
        assert net.weight_version > version
        assert net.inference_plan(max_batch=1, dtype="int8") is not plan


# -------------------------------------------------------------------- #
# calibration determinism (the sharded-serving soundness property)


def _plan_digest(plan) -> str:
    """One hash over everything calibration derives: formats, quantized
    weight/bias snapshots, tolerance, and a probe output."""
    digest = hashlib.sha256()
    for name in sorted(plan.calibration):
        digest.update(repr(plan.calibration[name]).encode())
    for step in plan._steps:
        for attr in ("w_q", "bias_q"):
            value = getattr(step, attr, None)
            if value is not None:
                digest.update(np.ascontiguousarray(value).tobytes())
    digest.update(repr(plan.tolerance).encode())
    probe = np.linspace(0.0, 1.0, 1 * 64 * 64).reshape(1, 1, 64, 64)
    digest.update(plan.run(probe).tobytes())
    return digest.hexdigest()


_DIGEST_SCRIPT = """
import sys
import numpy as np
sys.path.insert(0, {test_dir!r})
from test_quantized_inference import _plan_digest
from repro.nn.train import get_trained_network
net = get_trained_network("mini_fasterm")
print(_plan_digest(net.inference_plan(max_batch=1, dtype={dtype!r})))
"""


class TestDeterminism:
    @pytest.mark.parametrize("dtype", QUANT)
    def test_identical_across_processes_and_kernel_lanes(self, net, dtype):
        """A fresh process — with the compiled kernel and with it forced
        off — derives bit-identical formats, weight snapshots, and
        outputs.  This is what makes a quantized lane shardable: every
        worker compiles its own plan and must agree with its siblings
        bit for bit regardless of host SIMD."""
        local = _plan_digest(net.inference_plan(max_batch=1, dtype=dtype))
        script = _DIGEST_SCRIPT.format(
            test_dir=os.path.dirname(os.path.abspath(__file__)), dtype=dtype
        )
        for force_numpy in ("0", "1"):
            env = dict(os.environ, REPRO_FORCE_NUMPY=force_numpy)
            out = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, env=env, check=True,
            )
            assert out.stdout.strip() == local, (
                f"plan digest diverged in subprocess "
                f"(REPRO_FORCE_NUMPY={force_numpy})"
            )

    @pytest.mark.parametrize("dtype", QUANT)
    def test_pickle_roundtrip_recompiles_identically(self, net, frames, dtype):
        """Networks pickle without plans; the rebuilt plan must be
        indistinguishable (same digest, same outputs)."""
        plan = net.inference_plan(max_batch=2, dtype=dtype)
        clone = pickle.loads(pickle.dumps(net))
        clone_plan = clone.inference_plan(max_batch=2, dtype=dtype)
        assert _plan_digest(clone_plan) == _plan_digest(plan)
        np.testing.assert_array_equal(
            clone_plan.run(frames[:2]), plan.run(frames[:2])
        )


# -------------------------------------------------------------------- #
# saturation fallback


class TestFallback:
    def test_saturating_layer_falls_back_to_float(self):
        """A layer whose dynamic range exceeds the family's integer
        budget must run in float inside the quantized plan, not wrap."""
        rng = np.random.default_rng(0)
        layers = [
            Conv2d("conv_hot", 1, 4, kernel=3, stride=2, pad=1, rng=rng),
            ReLU("relu"),
            Flatten("flatten"),
            Linear("fc", 4 * 8 * 8, 4, rng=rng),
        ]
        net = Network("hot", layers, (1, 16, 16))
        # 8-bit weights carry 7 value bits: |w| >= 2^7 saturates any
        # choose_format budget, tripping the fallback threshold.
        layers[0].params["weight"][:] *= 1e4
        plan = InferencePlan(net, max_batch=2, dtype="int8")
        assert "conv_hot" in plan.quant_fallback_layers
        x = rng.random((2, 1, 16, 16))
        err = np.max(np.abs(plan.run(x).astype(np.float64) - net.forward(x)))
        assert err <= plan.tolerance.max_abs_error

    def test_calibrate_layer_flags_saturation(self):
        cal = calibrate_layer(
            "hot",
            sample_inputs=np.full((2, 4), 1e6),
            sample_outputs=np.ones((2, 4)),
            weight=np.ones((4, 4)),
            total_bits=8,
        )
        assert cal.fallback
        assert cal.input_stats.saturated_fraction > 0


# -------------------------------------------------------------------- #
# hardware savings estimate


class TestQuantizedSavings:
    def test_families_and_floats(self, net):
        s8 = quantized_savings(net, "int8")
        s16 = quantized_savings(net, "q16")
        assert quantized_savings(net, "float64") is None
        assert quantized_savings(net, "float32") is None
        # Narrower operands must not estimate worse than wider ones.
        assert s8.mac_energy_ratio > s16.mac_energy_ratio > 1.0
        assert s8.traffic_ratio >= s16.traffic_ratio > 1.0
        assert s8.quant_traffic_bytes < s8.float_traffic_bytes
        assert s8.traffic_energy_saved_mj > 0

    def test_macs_match_layer_accounting(self, net):
        savings = quantized_savings(net, "int8")
        want = sum(
            layer.macs(shape)
            for layer, shape in zip(net.layers, net.layer_input_shapes)
            if isinstance(layer, (Conv2d, Linear))
        )
        assert savings.macs == want
