"""Tests for key-frame policies, the AMC executor, and the EVA2 pipeline."""

import numpy as np
import pytest

from repro.core import (
    AMCConfig,
    AMCExecutor,
    AlwaysKeyPolicy,
    EVA2Pipeline,
    MatchErrorPolicy,
    MotionMagnitudePolicy,
    NeverKeyPolicy,
    StaticPolicy,
)
from repro.core.rfbme import OpCounts, RFBMEResult
from repro.motion.vector_field import VectorField, zero_field
from repro.video import generate_clip, scenario


def fake_estimation(match_error=0.0, magnitude=0.0, grid=(4, 4)):
    data = np.zeros(grid + (2,))
    if magnitude:
        data[..., 0] = magnitude / (grid[0] * grid[1])
    errors = np.zeros(grid)
    errors[0, 0] = match_error
    return RFBMEResult(
        field=VectorField(data),
        match_errors=errors,
        ops=OpCounts(1, 1),
    )


class TestPolicies:
    def test_frame_zero_always_key(self):
        for policy in (AlwaysKeyPolicy(), NeverKeyPolicy(), StaticPolicy(5)):
            policy.reset()
            assert policy.decide(0, None) is True

    def test_always(self):
        policy = AlwaysKeyPolicy()
        assert all(policy.decide(i, fake_estimation()) for i in range(1, 5))

    def test_never(self):
        policy = NeverKeyPolicy()
        assert not any(policy.decide(i, fake_estimation()) for i in range(1, 5))

    def test_static_interval(self):
        policy = StaticPolicy(3)
        decisions = [policy.decide(0, None)] + [
            policy.decide(i, fake_estimation()) for i in range(1, 9)
        ]
        assert decisions == [True, False, False, True, False, False, True, False, False]

    def test_static_interval_validation(self):
        with pytest.raises(ValueError):
            StaticPolicy(0)

    def test_match_error_threshold(self):
        policy = MatchErrorPolicy(threshold=1.0)
        policy.decide(0, None)
        assert policy.decide(1, fake_estimation(match_error=0.5)) is False
        assert policy.decide(2, fake_estimation(match_error=2.0)) is True

    def test_motion_magnitude_threshold(self):
        policy = MotionMagnitudePolicy(threshold=5.0)
        policy.decide(0, None)
        assert policy.decide(1, fake_estimation(magnitude=1.0)) is False
        assert policy.decide(2, fake_estimation(magnitude=100.0)) is True

    def test_max_gap_forces_key(self):
        policy = MatchErrorPolicy(threshold=1e9, max_gap=3)
        decisions = [policy.decide(0, None)] + [
            policy.decide(i, fake_estimation()) for i in range(1, 7)
        ]
        assert decisions == [True, False, False, True, False, False, True]

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            MatchErrorPolicy(threshold=-1.0)
        with pytest.raises(ValueError):
            MotionMagnitudePolicy(threshold=1.0, max_gap=0)


class TestAMCExecutor:
    def test_key_frame_matches_plain_forward(self, trained_fasterm, linear_clip):
        executor = AMCExecutor(trained_fasterm)
        out = executor.process_key(linear_clip.frames[0])
        plain = trained_fasterm.forward(linear_clip.frames[0][None, None])
        np.testing.assert_allclose(out, plain)

    def test_predict_without_key_raises(self, trained_fasterm, linear_clip):
        executor = AMCExecutor(trained_fasterm)
        with pytest.raises(RuntimeError):
            executor.process_predicted(linear_clip.frames[0])

    def test_estimate_without_key_raises(self, trained_fasterm, linear_clip):
        executor = AMCExecutor(trained_fasterm)
        with pytest.raises(RuntimeError):
            executor.estimate(linear_clip.frames[0])

    def test_stored_pixels_view_is_read_only(self, trained_fasterm, linear_clip):
        """The zero-copy view the runtime layer batches over must not let
        callers corrupt the stored key frame."""
        executor = AMCExecutor(trained_fasterm)
        executor.process_key(linear_clip.frames[0])
        pixels = executor.stored_pixels()
        np.testing.assert_array_equal(pixels, linear_clip.frames[0])
        with pytest.raises(ValueError):
            pixels[0, 0] = 1.0

    def test_bad_rfbme_backend_rejected(self):
        with pytest.raises(ValueError):
            AMCConfig(rfbme_backend="quantum")

    def test_prediction_on_same_frame_is_near_exact(self, trained_fasterm, linear_clip):
        """Zero motion -> warp is identity -> suffix sees the stored
        activation -> output matches the key frame output."""
        executor = AMCExecutor(trained_fasterm)
        key_out = executor.process_key(linear_clip.frames[0])
        pred_out = executor.process_predicted(linear_clip.frames[0])
        np.testing.assert_allclose(pred_out, key_out, atol=1e-9)

    def test_memoize_mode_ignores_motion(self, trained_fasterm, pan_clip):
        executor = AMCExecutor(trained_fasterm, AMCConfig(mode="memoize"))
        key_out = executor.process_key(pan_clip.frames[0])
        pred_out = executor.process_predicted(pan_clip.frames[5])
        np.testing.assert_allclose(pred_out, key_out)

    def test_warp_mode_tracks_motion_better_than_memoize(
        self, trained_fasterm, pan_clip
    ):
        """On a panning clip the warped activation must be closer to the
        true activation than the stale one (the Fig. 14 premise)."""
        gap = 6
        warp_ex = AMCExecutor(trained_fasterm, AMCConfig(mode="warp"))
        warp_ex.process_key(pan_clip.frames[0])
        est = warp_ex.estimate(pan_clip.frames[gap])
        warped = warp_ex.predicted_activation(est)
        stale = warp_ex.stored_activation()
        true = trained_fasterm.forward_prefix(
            pan_clip.frames[gap][None, None], warp_ex.target
        )[0]
        assert np.abs(warped - true).mean() < np.abs(stale - true).mean()

    def test_explicit_pixel_field_override(self, trained_fasterm, linear_clip):
        executor = AMCExecutor(trained_fasterm)
        executor.process_key(linear_clip.frames[0])
        out = executor.process_predicted(
            linear_clip.frames[1], pixel_field=zero_field(*executor.grid_shape)
        )
        memo_out = trained_fasterm.forward_suffix(
            executor.stored_activation()[None], executor.target
        )
        np.testing.assert_allclose(out, memo_out)

    def test_wrong_field_grid_rejected(self, trained_fasterm, linear_clip):
        executor = AMCExecutor(trained_fasterm)
        executor.process_key(linear_clip.frames[0])
        with pytest.raises(ValueError):
            executor.process_predicted(linear_clip.frames[1], pixel_field=zero_field(3, 3))

    def test_invalid_target_layer(self, trained_fasterm):
        with pytest.raises(ValueError):
            AMCExecutor(trained_fasterm, AMCConfig(target_layer="fc1"))

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            AMCConfig(mode="extrapolate")

    def test_frame_shape_validation(self, trained_fasterm, rng):
        executor = AMCExecutor(trained_fasterm)
        with pytest.raises(ValueError):
            executor.process_key(rng.normal(size=(32, 32)))

    def test_reset_clears_state(self, trained_fasterm, linear_clip):
        executor = AMCExecutor(trained_fasterm)
        executor.process_key(linear_clip.frames[0])
        assert executor.has_key
        executor.reset()
        assert not executor.has_key

    def test_early_target_layer(self, trained_fasterm, linear_clip):
        early = trained_fasterm.first_post_pool_layer()
        executor = AMCExecutor(trained_fasterm, AMCConfig(target_layer=early))
        out = executor.process_key(linear_clip.frames[0])
        plain = trained_fasterm.forward(linear_clip.frames[0][None, None])
        np.testing.assert_allclose(out, plain)
        assert executor.rf.stride < 8  # earlier layer, smaller stride

    def test_prefix_suffix_macs_sum(self, trained_fasterm):
        executor = AMCExecutor(trained_fasterm)
        total = sum(trained_fasterm.macs_per_layer().values())
        assert executor.prefix_macs() + executor.suffix_macs() == total


class TestPipeline:
    def test_always_key_matches_plain_network(self, trained_fasterm, linear_clip):
        pipeline = EVA2Pipeline(AMCExecutor(trained_fasterm), AlwaysKeyPolicy())
        result = pipeline.run_clip(linear_clip)
        assert result.key_fraction == 1.0
        plain = trained_fasterm.forward(linear_clip.frames[:, None, :, :])
        np.testing.assert_allclose(result.outputs(), plain)

    def test_static_policy_key_fraction(self, trained_fasterm, linear_clip):
        pipeline = EVA2Pipeline(AMCExecutor(trained_fasterm), StaticPolicy(4))
        result = pipeline.run_clip(linear_clip)
        assert result.key_mask()[0]
        assert abs(result.key_fraction - 0.25) < 0.05

    def test_records_carry_estimation_stats(self, trained_fasterm, linear_clip):
        pipeline = EVA2Pipeline(AMCExecutor(trained_fasterm), StaticPolicy(3))
        result = pipeline.run_clip(linear_clip)
        assert result.records[0].estimation_ops is None
        for record in result.records[1:]:
            assert record.estimation_ops is not None
            assert record.match_error is not None
            assert record.motion_magnitude is not None

    def test_state_resets_between_clips(self, trained_fasterm, linear_clip, pan_clip):
        pipeline = EVA2Pipeline(AMCExecutor(trained_fasterm), StaticPolicy(100))
        first = pipeline.run_clip(linear_clip)
        second = pipeline.run_clip(pan_clip)
        # Both clips start with their own key frame.
        assert first.key_mask()[0] and second.key_mask()[0]
        assert first.num_key_frames == 1 and second.num_key_frames == 1

    def test_adaptive_policy_takes_more_keys_on_chaos(self, trained_fasterm):
        calm = generate_clip(scenario("slow"), seed=200)
        chaos = generate_clip(scenario("occlusion"), seed=201)
        threshold = 18.0
        pipeline = EVA2Pipeline(
            AMCExecutor(trained_fasterm), MatchErrorPolicy(threshold)
        )
        calm_res = pipeline.run_clip(calm)
        chaos_res = pipeline.run_clip(chaos)
        assert chaos_res.num_key_frames >= calm_res.num_key_frames

    def test_run_clips(self, trained_fasterm, linear_clip, pan_clip):
        pipeline = EVA2Pipeline(AMCExecutor(trained_fasterm), StaticPolicy(4))
        results = pipeline.run_clips([linear_clip, pan_clip])
        assert len(results) == 2
