"""RFBME tests: translation recovery, bit-identity across host backends
(loop / batched / compiled kernel), the faithful producer/consumer
pipeline vs the vectorized implementation, op accounting, and config
validation."""

import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import sad_kernel
from repro.core.receptive_field import ReceptiveField
from repro.core.rfbme import (
    OpCounts,
    RFBMEConfig,
    RFBMEEngine,
    estimate_motion,
    estimate_motion_batch,
)
from repro.video import generate_clip, scenario


def textured_frame(rng, height=64, width=64):
    from repro.video.sprites import smooth_noise_texture

    return smooth_noise_texture(height, width, rng, smoothness=3)


def translate(frame, dy, dx):
    """Shift content by (dy, dx) with edge replication."""
    out = np.roll(np.roll(frame, dy, axis=0), dx, axis=1)
    return out


RF = ReceptiveField(size=24, stride=8, padding=8)
GRID = (8, 8)


class TestTranslationRecovery:
    @pytest.mark.parametrize("dy,dx", [(0, 0), (2, 0), (0, -4), (4, 4), (-2, 6)])
    def test_pure_translation(self, rng, dy, dx):
        """A globally translated frame yields the backward vector (-dy,-dx)
        for interior receptive fields."""
        key = textured_frame(rng)
        new = translate(key, dy, dx)
        result = estimate_motion(key, new, RF, GRID, RFBMEConfig(8, 2))
        interior = result.field.data[2:6, 2:6]
        expected = np.array([-dy, -dx], dtype=float)
        np.testing.assert_allclose(
            interior.reshape(-1, 2), np.tile(expected, (16, 1)), atol=0.0
        )

    def test_identical_frames_zero_field_zero_error(self, rng):
        key = textured_frame(rng)
        result = estimate_motion(key, key.copy(), RF, GRID)
        assert result.field.total_magnitude() == 0.0
        assert result.total_match_error == 0.0

    def test_match_error_increases_with_noise(self, rng):
        key = textured_frame(rng)
        small = estimate_motion(key, key + rng.normal(0, 0.01, key.shape), RF, GRID)
        large = estimate_motion(key, key + rng.normal(0, 0.2, key.shape), RF, GRID)
        assert large.total_match_error > small.total_match_error

    def test_odd_translation_quantized_by_search_stride(self, rng):
        """Search stride 2 cannot represent odd shifts exactly; the result
        is the nearest even offset."""
        key = textured_frame(rng)
        new = translate(key, 0, 3)
        result = estimate_motion(key, new, RF, GRID, RFBMEConfig(8, 2))
        interior_dx = result.field.data[2:6, 2:6, 1]
        assert set(np.unique(interior_dx)) <= {-2.0, -4.0}


def _assert_bit_identical(a, b):
    np.testing.assert_array_equal(a.field.data, b.field.data)
    assert np.array_equal(a.match_errors, b.match_errors), "match errors differ"
    assert a.ops == b.ops


class TestBackendEquivalence:
    """The vectorized backends must match the loop implementation bit for
    bit — match errors, fields, and op counts (the regression the runtime
    layer's 'backend is only a throughput knob' contract rests on)."""

    @pytest.mark.parametrize("scen", ["linear_motion", "camera_pan", "occlusion"])
    def test_batched_bit_identical_on_seeded_clip(self, scen):
        clip = generate_clip(scenario(scen), seed=20180602)
        for frame in range(1, 6):
            loop = estimate_motion(
                clip.frames[0], clip.frames[frame], RF, GRID, backend="loop"
            )
            batched = estimate_motion(
                clip.frames[0], clip.frames[frame], RF, GRID, backend="batched"
            )
            _assert_bit_identical(loop, batched)

    @pytest.mark.skipif(
        not sad_kernel.kernel_available(), reason="compiled SAD kernel unavailable"
    )
    def test_kernel_bit_identical_on_seeded_clip(self):
        clip = generate_clip(scenario("camera_pan"), seed=20180602)
        loop = estimate_motion(
            clip.frames[0], clip.frames[4], RF, GRID, backend="loop"
        )
        kernel = estimate_motion(
            clip.frames[0], clip.frames[4], RF, GRID, backend="kernel"
        )
        _assert_bit_identical(loop, kernel)

    @pytest.mark.parametrize("backend", ["batched", "kernel"])
    def test_odd_geometry_bit_identical(self, rng, backend):
        """Non-tile-aligned frames and coarse search strides agree too."""
        key = rng.random((61, 67))
        new = np.roll(key, 3, axis=1)
        config = RFBMEConfig(6, 3)
        loop = estimate_motion(key, new, RF, (8, 8), config, backend="loop")
        fast = estimate_motion(key, new, RF, (8, 8), config, backend=backend)
        _assert_bit_identical(loop, fast)

    def test_batch_matches_single(self, rng):
        """estimate_motion_batch is bit-identical to per-pair calls —
        the property lockstep multi-clip execution relies on."""
        pairs = [
            (rng.random((64, 64)), rng.random((64, 64))) for _ in range(5)
        ]
        batch = estimate_motion_batch(pairs, RF, GRID)
        for pair, got in zip(pairs, batch):
            _assert_bit_identical(estimate_motion(pair[0], pair[1], RF, GRID), got)

    def test_engine_reuse_is_stable(self, rng):
        """A reused engine (persistent scratch) returns identical results
        call after call."""
        engine = RFBMEEngine((64, 64), RF, GRID)
        key, new = rng.random((64, 64)), rng.random((64, 64))
        first = engine.estimate(key, new)
        engine.estimate(rng.random((64, 64)), rng.random((64, 64)))
        again = engine.estimate(key, new)
        _assert_bit_identical(first, again)

    def test_kernel_falls_back_when_unavailable(self, monkeypatch):
        monkeypatch.setattr(sad_kernel, "_STATE", False)
        with pytest.warns(RuntimeWarning, match="falling back"):
            engine = RFBMEEngine((64, 64), RF, GRID, backend="kernel")
        assert engine.backend == "batched"

    def test_default_backend_falls_back_silently(self, monkeypatch):
        """Auto selection may downgrade without noise — only an explicit
        'kernel' request warns."""
        monkeypatch.setattr(sad_kernel, "_STATE", False)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            engine = RFBMEEngine((64, 64), RF, GRID)
        assert engine.backend == "batched"

    def test_force_numpy_env_knob_disables_kernel(self, monkeypatch):
        """REPRO_FORCE_NUMPY=1 keeps every compiled path off — the CI
        NumPy lane's guarantee that pure-NumPy execution stays covered."""
        monkeypatch.setenv("REPRO_FORCE_NUMPY", "1")
        monkeypatch.setattr(sad_kernel, "_STATE", None)
        assert sad_kernel.get_kernel() is None
        assert not sad_kernel.kernel_available()
        engine = RFBMEEngine((64, 64), RF, GRID)
        assert engine.backend == "batched"

    def test_unknown_backend_rejected(self, rng):
        with pytest.raises(ValueError):
            estimate_motion(
                rng.random((64, 64)), rng.random((64, 64)), RF, GRID,
                backend="quantum",
            )

    @pytest.mark.parametrize("backend", ["loop", "batched", "kernel"])
    def test_engine_rejects_foreign_frame_shape(self, rng, backend):
        """Every backend fails identically on frames that don't match the
        engine's bound shape."""
        engine = RFBMEEngine((64, 64), RF, GRID, backend=backend)
        with pytest.raises(ValueError, match="bound to frames"):
            engine.estimate(rng.random((128, 128)), rng.random((128, 128)))

    def test_faithful_conflicts_with_backend(self, rng):
        with pytest.raises(ValueError, match="faithful"):
            estimate_motion(
                rng.random((64, 64)), rng.random((64, 64)), RF, GRID,
                faithful=True, backend="kernel",
            )

    @pytest.mark.parametrize("dtype", [np.float32, np.uint8])
    def test_non_float64_inputs_coerced(self, rng, dtype):
        """Frames in other dtypes are converted to float64 up front, so
        every backend still agrees bit for bit (the compiled kernel reads
        raw float64 buffers and would otherwise see garbage)."""
        key = (rng.random((64, 64)) * 200).astype(dtype)
        new = (rng.random((64, 64)) * 200).astype(dtype)
        reference = estimate_motion(
            key.astype(np.float64), new.astype(np.float64), RF, GRID,
            backend="loop",
        )
        for backend in ("loop", "batched", "kernel"):
            _assert_bit_identical(
                reference, estimate_motion(key, new, RF, GRID, backend=backend)
            )


class TestFaithfulPipeline:
    @pytest.mark.parametrize("scen", ["linear_motion", "camera_pan", "occlusion"])
    def test_matches_vectorized(self, scen):
        clip = generate_clip(scenario(scen), seed=55)
        key, new = clip.frames[0], clip.frames[5]
        fast = estimate_motion(key, new, RF, GRID, RFBMEConfig(8, 2))
        slow = estimate_motion(key, new, RF, GRID, RFBMEConfig(8, 2), faithful=True)
        np.testing.assert_allclose(fast.field.data, slow.field.data)
        np.testing.assert_allclose(fast.match_errors, slow.match_errors, atol=1e-9)

    def test_faithful_op_counts_positive(self, rng):
        key = textured_frame(rng)
        new = translate(key, 2, 2)
        result = estimate_motion(key, new, RF, GRID, faithful=True)
        assert result.ops.producer_adds > 0
        assert result.ops.consumer_adds > 0

    def test_rolling_consumer_cheaper_than_full_sums(self, rng):
        """The incremental consumer must beat naive per-field recompute:
        (tiles/field)^2 adds per field per offset."""
        key = textured_frame(rng)
        new = translate(key, 2, 0)
        config = RFBMEConfig(8, 2)
        result = estimate_motion(key, new, RF, GRID, config, faithful=True)
        n_offsets_sq = len(config.offsets()) ** 2
        naive = GRID[0] * GRID[1] * RF.tiles_per_field() ** 2 * n_offsets_sq
        assert result.ops.consumer_adds < naive


class TestConfig:
    def test_zero_offset_always_searched(self):
        config = RFBMEConfig(search_radius=8, search_stride=2)
        assert 0 in config.offsets()

    def test_radius_must_be_multiple_of_stride(self):
        with pytest.raises(ValueError):
            RFBMEConfig(search_radius=7, search_stride=2)

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            RFBMEConfig(search_radius=-2, search_stride=2)

    def test_radius_zero_degenerates_to_no_motion(self, rng):
        key = textured_frame(rng)
        new = translate(key, 4, 4)
        result = estimate_motion(key, new, RF, GRID, RFBMEConfig(0, 1))
        assert result.field.total_magnitude() == 0.0


class TestValidation:
    def test_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            estimate_motion(
                rng.normal(size=(64, 64)), rng.normal(size=(32, 32)), RF, GRID
            )

    def test_non_2d_frames(self, rng):
        with pytest.raises(ValueError):
            estimate_motion(
                rng.normal(size=(3, 64, 64)), rng.normal(size=(3, 64, 64)), RF, GRID
            )

    def test_frame_smaller_than_tile(self, rng):
        small_rf = ReceptiveField(size=32, stride=32, padding=0)
        with pytest.raises(ValueError):
            estimate_motion(
                rng.normal(size=(16, 16)), rng.normal(size=(16, 16)), small_rf, (1, 1)
            )


class TestOpCounts:
    def test_total(self):
        ops = OpCounts(producer_adds=10, consumer_adds=5)
        assert ops.total == 15

    def test_producer_scales_with_offsets(self, rng):
        key = textured_frame(rng)
        new = translate(key, 1, 1)
        few = estimate_motion(key, new, RF, GRID, RFBMEConfig(4, 2))
        many = estimate_motion(key, new, RF, GRID, RFBMEConfig(8, 2))
        assert many.ops.producer_adds > few.ops.producer_adds


@settings(max_examples=15, deadline=None)
@given(dy=st.integers(-3, 3), dx=st.integers(-3, 3))
def test_translation_recovery_property(dy, dx):
    """For any even global shift within the search radius, interior fields
    recover the exact backward vector (search stride 1)."""
    rng = np.random.default_rng(99)
    key = textured_frame(rng)
    new = translate(key, dy, dx)
    result = estimate_motion(key, new, RF, GRID, RFBMEConfig(4, 1))
    interior = result.field.data[3:5, 3:5]
    np.testing.assert_allclose(interior[..., 0], -dy)
    np.testing.assert_allclose(interior[..., 1], -dx)


class TestHostProfiles:
    """"fast" and "pr1" are wall-clock knobs only: identical results."""

    def test_profiles_and_backends_agree(self):
        rng = np.random.default_rng(20)
        rf = ReceptiveField(size=24, stride=8, padding=0)
        pairs = [
            (rng.random((64, 64)), rng.random((64, 64))) for _ in range(5)
        ]
        engines = {
            (backend, profile): RFBMEEngine(
                (64, 64), rf, (8, 8), backend=backend, profile=profile
            )
            for backend in ("kernel", "batched")
            for profile in ("fast", "pr1")
        }
        reference = RFBMEEngine((64, 64), rf, (8, 8), backend="loop")
        want = reference.estimate_batch(pairs)
        for (backend, profile), engine in engines.items():
            got = engine.estimate_batch(pairs)
            for a, b in zip(got, want):
                label = f"{backend}/{profile}"
                assert np.array_equal(a.field.data, b.field.data), label
                assert np.array_equal(a.match_errors, b.match_errors), label
                assert a.ops == b.ops, label

    def test_varying_batch_sizes_reuse_workspace(self):
        rng = np.random.default_rng(21)
        rf = ReceptiveField(size=24, stride=8, padding=0)
        engine = RFBMEEngine((64, 64), rf, (8, 8))
        reference = RFBMEEngine((64, 64), rf, (8, 8), backend="loop")
        pairs = [
            (rng.random((64, 64)), rng.random((64, 64))) for _ in range(6)
        ]
        for size in (6, 1, 4, 2, 6):
            got = engine.estimate_batch(pairs[:size])
            want = reference.estimate_batch(pairs[:size])
            for a, b in zip(got, want):
                assert np.array_equal(a.field.data, b.field.data)
                assert np.array_equal(a.match_errors, b.match_errors)

    def test_bad_profile_rejected(self):
        rf = ReceptiveField(size=24, stride=8, padding=0)
        with pytest.raises(ValueError):
            RFBMEEngine((64, 64), rf, (8, 8), profile="fastest")
