"""Tests for the vision metrics: IoU, AP, mAP, top-1/top-k accuracy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vision import (
    Detection,
    GroundTruth,
    average_precision,
    iou,
    mean_average_precision,
    top1_accuracy,
    topk_accuracy,
)


class TestIoU:
    def test_identical_boxes(self):
        assert iou((10, 10, 4, 4), (10, 10, 4, 4)) == pytest.approx(1.0)

    def test_disjoint_boxes(self):
        assert iou((0, 0, 2, 2), (10, 10, 2, 2)) == 0.0

    def test_half_overlap(self):
        # Two 4x4 boxes offset by 2 in x: intersection 2x4=8, union 24.
        assert iou((2, 2, 4, 4), (4, 2, 4, 4)) == pytest.approx(8 / 24)

    def test_contained_box(self):
        assert iou((5, 5, 2, 2), (5, 5, 4, 4)) == pytest.approx(4 / 16)

    def test_negative_extent_rejected(self):
        with pytest.raises(ValueError):
            iou((0, 0, -1, 2), (0, 0, 2, 2))

    def test_zero_area(self):
        assert iou((0, 0, 0, 0), (0, 0, 0, 0)) == 0.0


class TestAveragePrecision:
    def test_perfect_detections(self):
        truths = [GroundTruth(i, 0, (10, 10, 4, 4)) for i in range(4)]
        dets = [Detection(i, 0, 0.9, (10, 10, 4, 4)) for i in range(4)]
        assert average_precision(dets, truths) == pytest.approx(1.0)

    def test_all_misses(self):
        truths = [GroundTruth(0, 0, (10, 10, 4, 4))]
        dets = [Detection(0, 0, 0.9, (40, 40, 4, 4))]
        assert average_precision(dets, truths) == 0.0

    def test_no_truths(self):
        assert average_precision([Detection(0, 0, 0.5, (0, 0, 1, 1))], []) == 0.0

    def test_no_detections(self):
        assert average_precision([], [GroundTruth(0, 0, (0, 0, 2, 2))]) == 0.0

    def test_half_recall(self):
        truths = [GroundTruth(i, 0, (10, 10, 4, 4)) for i in range(2)]
        dets = [Detection(0, 0, 0.9, (10, 10, 4, 4))]  # only frame 0 found
        assert average_precision(dets, truths) == pytest.approx(0.5)

    def test_duplicate_detections_penalised(self):
        truths = [GroundTruth(0, 0, (10, 10, 4, 4))]
        dets = [
            Detection(0, 0, 0.9, (10, 10, 4, 4)),
            Detection(0, 0, 0.8, (10, 10, 4, 4)),  # duplicate: FP
        ]
        ap = average_precision(dets, truths)
        assert ap == pytest.approx(1.0)  # recall reached at precision 1

    def test_confidence_ordering_matters(self):
        """A wrong high-confidence detection drags precision down."""
        truths = [GroundTruth(i, 0, (10, 10, 4, 4)) for i in range(2)]
        good_first = [
            Detection(0, 0, 0.9, (10, 10, 4, 4)),
            Detection(1, 0, 0.8, (40, 40, 4, 4)),  # miss
            Detection(1, 0, 0.7, (10, 10, 4, 4)),
        ]
        bad_first = [
            Detection(1, 0, 0.9, (40, 40, 4, 4)),  # miss first
            Detection(0, 0, 0.8, (10, 10, 4, 4)),
            Detection(1, 0, 0.7, (10, 10, 4, 4)),
        ]
        assert average_precision(good_first, truths) > average_precision(
            bad_first, truths
        )

    def test_iou_threshold(self):
        truths = [GroundTruth(0, 0, (10, 10, 4, 4))]
        dets = [Detection(0, 0, 0.9, (12, 10, 4, 4))]  # IoU = 8/24 = 0.33
        assert average_precision(dets, truths, iou_threshold=0.3) == pytest.approx(1.0)
        assert average_precision(dets, truths, iou_threshold=0.5) == 0.0


class TestMeanAP:
    def test_averages_over_classes(self):
        truths = [
            GroundTruth(0, 0, (10, 10, 4, 4)),
            GroundTruth(1, 1, (10, 10, 4, 4)),
        ]
        dets = [
            Detection(0, 0, 0.9, (10, 10, 4, 4)),  # class 0 perfect
            Detection(1, 1, 0.9, (40, 40, 4, 4)),  # class 1 miss
        ]
        assert mean_average_precision(dets, truths) == pytest.approx(0.5)

    def test_empty_truths(self):
        assert mean_average_precision([], []) == 0.0

    def test_wrong_class_never_matches(self):
        truths = [GroundTruth(0, 0, (10, 10, 4, 4))]
        dets = [Detection(0, 1, 0.9, (10, 10, 4, 4))]
        assert mean_average_precision(dets, truths) == 0.0


class TestClassification:
    def test_top1(self):
        logits = np.array([[0.1, 0.9], [0.8, 0.2], [0.4, 0.6]])
        labels = np.array([1, 0, 0])
        assert top1_accuracy(logits, labels) == pytest.approx(2 / 3)

    def test_topk(self):
        logits = np.array([[3.0, 2.0, 1.0, 0.0]])
        assert topk_accuracy(logits, np.array([2]), k=3) == 1.0
        assert topk_accuracy(logits, np.array([3]), k=3) == 0.0

    def test_empty(self):
        assert top1_accuracy(np.zeros((0, 4)), np.zeros(0, dtype=int)) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            top1_accuracy(np.zeros(4), np.zeros(4, dtype=int))
        with pytest.raises(ValueError):
            top1_accuracy(np.zeros((2, 4)), np.zeros(3, dtype=int))
        with pytest.raises(ValueError):
            topk_accuracy(np.zeros((2, 4)), np.zeros(2, dtype=int), k=5)


@settings(max_examples=20, deadline=None)
@given(
    offset=st.floats(0, 10, allow_nan=False),
    size=st.floats(0.5, 10, allow_nan=False),
)
def test_iou_bounds_property(offset, size):
    """IoU is always in [0, 1] and symmetric."""
    a = (5.0, 5.0, size, size)
    b = (5.0 + offset, 5.0, size, size)
    val = iou(a, b)
    assert 0.0 <= val <= 1.0
    assert val == pytest.approx(iou(b, a))


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 1000))
def test_ap_bounded_property(seed):
    rng = np.random.default_rng(seed)
    truths = [
        GroundTruth(i, 0, tuple(rng.uniform(2, 30, size=4))) for i in range(5)
    ]
    dets = [
        Detection(int(rng.integers(0, 5)), 0, float(rng.random()),
                  tuple(rng.uniform(2, 30, size=4)))
        for _ in range(8)
    ]
    assert 0.0 <= average_precision(dets, truths) <= 1.0
