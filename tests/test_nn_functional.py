"""Unit tests for the low-level NN kernels: forward correctness against
naive reference implementations and backward correctness against numerical
gradients."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import functional as F


def naive_conv2d(x, weight, bias, stride, pad):
    n, c, h, w = x.shape
    out_c, in_c, kh, kw = weight.shape
    xp = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    oh = (h + 2 * pad - kh) // stride + 1
    ow = (w + 2 * pad - kw) // stride + 1
    out = np.zeros((n, out_c, oh, ow))
    for b in range(n):
        for oc in range(out_c):
            for i in range(oh):
                for j in range(ow):
                    region = xp[b, :, i * stride : i * stride + kh, j * stride : j * stride + kw]
                    out[b, oc, i, j] = (region * weight[oc]).sum() + bias[oc]
    return out


def numerical_grad(fn, x, eps=1e-6):
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = fn()
        flat[i] = orig - eps
        lo = fn()
        flat[i] = orig
        gflat[i] = (hi - lo) / (2 * eps)
    return grad


class TestConvOutputSize:
    def test_basic(self):
        assert F.conv_output_size(64, 3, 1, 1) == 64

    def test_stride(self):
        assert F.conv_output_size(64, 5, 2, 2) == 32

    def test_pool(self):
        assert F.conv_output_size(16, 2, 2, 0) == 8

    def test_window_too_large(self):
        with pytest.raises(ValueError):
            F.conv_output_size(4, 9, 1, 1)

    def test_bad_stride(self):
        with pytest.raises(ValueError):
            F.conv_output_size(8, 3, 0, 0)


class TestConv2d:
    @pytest.mark.parametrize("stride,pad", [(1, 0), (1, 1), (2, 1), (2, 2)])
    def test_matches_naive(self, rng, stride, pad):
        x = rng.normal(size=(2, 3, 9, 9))
        w = rng.normal(size=(4, 3, 3, 3))
        b = rng.normal(size=4)
        out, _ = F.conv2d_forward(x, w, b, stride, pad)
        np.testing.assert_allclose(out, naive_conv2d(x, w, b, stride, pad), atol=1e-10)

    def test_channel_mismatch_raises(self, rng):
        x = rng.normal(size=(1, 2, 8, 8))
        w = rng.normal(size=(4, 3, 3, 3))
        with pytest.raises(ValueError):
            F.conv2d_forward(x, w, np.zeros(4), 1, 1)

    def test_backward_input_grad(self, rng):
        x = rng.normal(size=(1, 2, 6, 6))
        w = rng.normal(size=(3, 2, 3, 3))
        b = rng.normal(size=3)
        out, cache = F.conv2d_forward(x, w, b, 1, 1)
        grad_out = rng.normal(size=out.shape)
        gx, gw, gb = F.conv2d_backward(grad_out, cache)

        def loss():
            o, _ = F.conv2d_forward(x, w, b, 1, 1)
            return float((o * grad_out).sum())

        np.testing.assert_allclose(gx, numerical_grad(loss, x), atol=1e-5)

    def test_backward_weight_grad(self, rng):
        x = rng.normal(size=(1, 2, 5, 5))
        w = rng.normal(size=(2, 2, 3, 3))
        b = rng.normal(size=2)
        out, cache = F.conv2d_forward(x, w, b, 2, 1)
        grad_out = rng.normal(size=out.shape)
        _, gw, gb = F.conv2d_backward(grad_out, cache)

        def loss():
            o, _ = F.conv2d_forward(x, w, b, 2, 1)
            return float((o * grad_out).sum())

        np.testing.assert_allclose(gw, numerical_grad(loss, w), atol=1e-5)
        np.testing.assert_allclose(gb, numerical_grad(loss, b), atol=1e-5)


class TestIm2Col:
    def test_col2im_is_adjoint(self, rng):
        """<im2col(x), y> == <x, col2im(y)> — the defining adjoint property."""
        x = rng.normal(size=(2, 3, 8, 8))
        cols = F.im2col(x, 3, 3, 2, 1)
        y = rng.normal(size=cols.shape)
        lhs = float((cols * y).sum())
        back = F.col2im(y, x.shape, 3, 3, 2, 1)
        rhs = float((x * back).sum())
        assert lhs == pytest.approx(rhs, rel=1e-10)


class TestPooling:
    def test_maxpool_values(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out, _ = F.maxpool2d_forward(x, 2, 2)
        np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_maxpool_backward_routes_to_argmax(self, rng):
        x = rng.normal(size=(1, 2, 6, 6))
        out, cache = F.maxpool2d_forward(x, 2, 2)
        grad_out = rng.normal(size=out.shape)
        gx = F.maxpool2d_backward(grad_out, cache)

        def loss():
            o, _ = F.maxpool2d_forward(x, 2, 2)
            return float((o * grad_out).sum())

        np.testing.assert_allclose(gx, numerical_grad(loss, x), atol=1e-5)

    def test_avgpool_values(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out, _ = F.avgpool2d_forward(x, 2, 2)
        np.testing.assert_array_equal(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_avgpool_backward(self, rng):
        x = rng.normal(size=(1, 1, 4, 4))
        out, cache = F.avgpool2d_forward(x, 2, 2)
        grad_out = rng.normal(size=out.shape)
        gx = F.avgpool2d_backward(grad_out, cache)

        def loss():
            o, _ = F.avgpool2d_forward(x, 2, 2)
            return float((o * grad_out).sum())

        np.testing.assert_allclose(gx, numerical_grad(loss, x), atol=1e-5)


class TestReLU:
    def test_forward(self):
        x = np.array([-1.0, 0.0, 2.0])
        out, mask = F.relu_forward(x)
        np.testing.assert_array_equal(out, [0.0, 0.0, 2.0])
        np.testing.assert_array_equal(mask, [False, False, True])

    def test_backward(self):
        x = np.array([-1.0, 0.5, 2.0])
        _, mask = F.relu_forward(x)
        grad = F.relu_backward(np.ones(3), mask)
        np.testing.assert_array_equal(grad, [0.0, 1.0, 1.0])


class TestLinear:
    def test_forward(self, rng):
        x = rng.normal(size=(4, 2, 3, 3))
        w = rng.normal(size=(5, 18))
        b = rng.normal(size=5)
        out, _ = F.linear_forward(x, w, b)
        np.testing.assert_allclose(out, x.reshape(4, -1) @ w.T + b)

    def test_feature_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            F.linear_forward(rng.normal(size=(1, 7)), rng.normal(size=(3, 8)), np.zeros(3))

    def test_backward(self, rng):
        x = rng.normal(size=(2, 6))
        w = rng.normal(size=(4, 6))
        b = rng.normal(size=4)
        out, cache = F.linear_forward(x, w, b)
        grad_out = rng.normal(size=out.shape)
        gx, gw, gb = F.linear_backward(grad_out, cache)

        def loss():
            o, _ = F.linear_forward(x, w, b)
            return float((o * grad_out).sum())

        np.testing.assert_allclose(gx, numerical_grad(loss, x), atol=1e-6)
        np.testing.assert_allclose(gw, numerical_grad(loss, w), atol=1e-6)
        np.testing.assert_allclose(gb, numerical_grad(loss, b), atol=1e-6)


class TestLosses:
    def test_softmax_rows_sum_to_one(self, rng):
        probs = F.softmax(rng.normal(size=(5, 7)))
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(5))

    def test_softmax_stability(self):
        probs = F.softmax(np.array([[1000.0, 1000.0]]))
        np.testing.assert_allclose(probs, [[0.5, 0.5]])

    def test_cross_entropy_perfect_prediction(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        assert F.cross_entropy(logits, np.array([0, 1])) < 1e-6

    def test_cross_entropy_grad_matches_numerical(self, rng):
        logits = rng.normal(size=(3, 4))
        labels = np.array([0, 2, 1])
        grad = F.cross_entropy_grad(logits, labels)

        def loss():
            return F.cross_entropy(logits, labels)

        np.testing.assert_allclose(grad, numerical_grad(loss, logits), atol=1e-6)

    def test_smooth_l1_quadratic_then_linear(self):
        small = F.smooth_l1(np.array([0.05]), np.array([0.0]), beta=0.1)
        assert small == pytest.approx(0.5 * 0.05**2 / 0.1)
        large = F.smooth_l1(np.array([1.0]), np.array([0.0]), beta=0.1)
        assert large == pytest.approx(1.0 - 0.05)

    def test_smooth_l1_grad_matches_numerical(self, rng):
        pred = rng.normal(size=(2, 4))
        target = rng.normal(size=(2, 4))
        grad = F.smooth_l1_grad(pred, target, beta=0.5)

        def loss():
            return F.smooth_l1(pred, target, beta=0.5)

        np.testing.assert_allclose(grad, numerical_grad(loss, pred), atol=1e-6)


@settings(max_examples=25, deadline=None)
@given(
    h=st.integers(4, 12),
    w=st.integers(4, 12),
    k=st.integers(1, 3),
    stride=st.integers(1, 2),
    pad=st.integers(0, 2),
)
def test_conv_shape_property(h, w, k, stride, pad):
    """Output shape always matches conv_output_size for valid geometry."""
    if h + 2 * pad < k or w + 2 * pad < k:
        return
    rng = np.random.default_rng(0)
    x = rng.normal(size=(1, 2, h, w))
    weight = rng.normal(size=(3, 2, k, k))
    out, _ = F.conv2d_forward(x, weight, np.zeros(3), stride, pad)
    assert out.shape == (
        1,
        3,
        F.conv_output_size(h, k, stride, pad),
        F.conv_output_size(w, k, stride, pad),
    )


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 2**32 - 1))
def test_conv_linearity_property(seed):
    """Convolution is linear: f(ax + by) = a f(x) + b f(y) (zero bias)."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(1, 2, 6, 6))
    y = rng.normal(size=(1, 2, 6, 6))
    w = rng.normal(size=(2, 2, 3, 3))
    zero_b = np.zeros(2)
    a, b = rng.normal(), rng.normal()
    lhs, _ = F.conv2d_forward(a * x + b * y, w, zero_b, 1, 1)
    fx, _ = F.conv2d_forward(x, w, zero_b, 1, 1)
    fy, _ = F.conv2d_forward(y, w, zero_b, 1, 1)
    np.testing.assert_allclose(lhs, a * fx + b * fy, atol=1e-10)


class TestPoolWindows:
    """The shared strided-window helper behind both pooling forwards."""

    def test_is_a_view_with_window_content(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 3, 8, 6))
        windows = F.pool_windows(x, 2, 2)
        assert windows.shape == (2, 3, 4, 3, 2, 2)
        assert windows.base is not None  # no copy
        np.testing.assert_array_equal(windows[1, 2, 1, 0], x[1, 2, 2:4, 0:2])

    def test_overlapping_stride(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(1, 1, 5, 5))
        windows = F.pool_windows(x, 3, 1)
        assert windows.shape == (1, 1, 3, 3, 3, 3)
        np.testing.assert_array_equal(windows[0, 0, 1, 2], x[0, 0, 1:4, 2:5])

    def test_pool_forwards_accept_noncontiguous_input(self):
        """Conv outputs arrive as transpose views; pooling must handle
        arbitrary strides without an up-front copy."""
        rng = np.random.default_rng(2)
        base = rng.normal(size=(2, 6, 6, 3))
        x = base.transpose(0, 3, 1, 2)  # NCHW view of NHWC data
        want_max, _ = F.maxpool2d_forward(np.ascontiguousarray(x), 2, 2)
        got_max, _ = F.maxpool2d_forward(x, 2, 2)
        np.testing.assert_array_equal(got_max, want_max)
        want_avg, _ = F.avgpool2d_forward(np.ascontiguousarray(x), 2, 2)
        got_avg, _ = F.avgpool2d_forward(x, 2, 2)
        np.testing.assert_array_equal(got_avg, want_avg)


class TestAvgPoolBackwardRegression:
    def test_matches_numerical_gradient(self):
        """The broadcast fold must implement the true gradient of the
        average-pooling forward (satellite regression for the np.repeat
        removal)."""
        rng = np.random.default_rng(3)
        x = rng.normal(size=(1, 2, 6, 6))
        field, stride = 2, 2
        out, cache = F.avgpool2d_forward(x, field, stride)
        grad_out = rng.normal(size=out.shape)
        grad_x = F.avgpool2d_backward(grad_out, cache)

        eps = 1e-6
        numeric = np.zeros_like(x)
        for idx in np.ndindex(x.shape):
            bumped = x.copy()
            bumped[idx] += eps
            plus, _ = F.avgpool2d_forward(bumped, field, stride)
            bumped[idx] -= 2 * eps
            minus, _ = F.avgpool2d_forward(bumped, field, stride)
            numeric[idx] = ((plus - minus) * grad_out).sum() / (2 * eps)
        np.testing.assert_allclose(grad_x, numeric, atol=1e-6)

    def test_overlapping_windows_accumulate(self):
        """Overlapping windows (stride < field) must sum contributions."""
        x = np.ones((1, 1, 4, 4))
        out, cache = F.avgpool2d_forward(x, 2, 1)
        grad_x = F.avgpool2d_backward(np.ones_like(out), cache)
        # the centre pixels belong to four 2x2 windows, corners to one
        assert grad_x[0, 0, 0, 0] == pytest.approx(0.25)
        assert grad_x[0, 0, 1, 1] == pytest.approx(1.0)
