"""The elastic front door: sources, watermarks, autoscaling, config.

Three contracts under test:

* the :class:`AutoscalePolicy` is a *pure function* — scale decisions
  depend only on the observation passed in, with hysteresis carried
  explicitly through the returned streak;
* serving from any :class:`RequestSource` (list, generator, bounded
  queue) and under any fleet shape (fixed shards, autoscaled 1→N,
  virtual-time process admission) yields clip results bit-identical to
  the serial run;
* :class:`ServerConfig` is the one validated way to shape the server,
  with the legacy keyword aliases kept alive behind a single
  :class:`DeprecationWarning`.
"""

import threading
import time

import numpy as np
import pytest

from repro.runtime import (
    AutoscalePolicy,
    BackpressureError,
    ClipRequest,
    FaultEvent,
    FaultPlan,
    IteratorSource,
    ListSource,
    PipelineSpec,
    QueueSource,
    ServerConfig,
    ServingRuntime,
    as_request_source,
    bursty_arrival_times,
    run_workload,
    synthetic_workload,
)

NETWORK = "mini_fasterm"


@pytest.fixture(scope="module")
def spec():
    spec = PipelineSpec(network=NETWORK)
    spec.warm()
    return spec


@pytest.fixture(scope="module")
def clips():
    return synthetic_workload(10, num_frames=4, base_seed=23)


@pytest.fixture(scope="module")
def serial_result(spec, clips):
    return run_workload(spec, clips, batch=False)


def _requests(clips, arrivals=None, **kwargs):
    arrivals = arrivals if arrivals is not None else [0.0] * len(clips)
    return [
        ClipRequest(request_id=i, clip=clip, arrival_time=t, **kwargs)
        for i, (clip, t) in enumerate(zip(clips, arrivals))
    ]


def _signatures(report):
    return {
        record.request_id: (
            record.result.outputs().tobytes(),
            record.result.key_mask().tobytes(),
        )
        for record in report.records
    }


def _assert_identical(report, reference):
    got = report.workload_result()
    assert got.matches(reference)
    for served, want in zip(got.results, reference.results):
        np.testing.assert_array_equal(served.outputs(), want.outputs())
        np.testing.assert_array_equal(served.key_mask(), want.key_mask())


# ------------------------------------------------------------------ #
# AutoscalePolicy: a pure function with explicit hysteresis
# ------------------------------------------------------------------ #
class TestAutoscalePolicy:
    def test_scale_up_needs_sustained_depth(self):
        policy = AutoscalePolicy(max_shards=4, high_depth=2.0, sustain_up=2)
        first = policy.decide(shards=1, queue_depth=5, streak=0)
        assert first.target == 1  # one hot observation is not a trend
        second = policy.decide(shards=1, queue_depth=5, streak=first.streak)
        assert second.target == 2
        assert second.reason == "queue-depth"

    def test_one_calm_observation_resets_the_up_streak(self):
        policy = AutoscalePolicy(max_shards=4, sustain_up=2)
        hot = policy.decide(1, 5, 0)
        calm = policy.decide(1, 1, hot.streak)  # pressure between bands
        assert calm.streak == 0
        again = policy.decide(1, 5, calm.streak)
        assert again.target == 1  # the trend starts over

    def test_urgent_deadline_slack_scales_immediately(self):
        policy = AutoscalePolicy(max_shards=4, sustain_up=3, slack_floor=0.0)
        decision = policy.decide(1, 1, 0, deadline_slack=-0.5)
        assert decision.target == 2
        assert decision.reason == "deadline-slack"

    def test_scale_down_hysteresis(self):
        policy = AutoscalePolicy(max_shards=4, low_depth=0.25, sustain_down=3)
        streak = 0
        for step in range(2):
            decision = policy.decide(3, 0, streak)
            assert decision.target == 3, f"shrank after {step + 1} idle obs"
            streak = decision.streak
        final = policy.decide(3, 0, streak)
        assert final.target == 2
        assert final.reason == "idle"

    def test_never_exceeds_max_shards(self):
        policy = AutoscalePolicy(max_shards=3, sustain_up=1)
        streak = 0
        shards = 1
        for _ in range(10):
            decision = policy.decide(shards, 50, streak)
            shards, streak = decision.target, decision.streak
            assert shards <= 3
        assert shards == 3

    def test_never_shrinks_below_min_shards(self):
        policy = AutoscalePolicy(min_shards=2, max_shards=4, sustain_down=1)
        decision = policy.decide(2, 0, -5)
        assert decision.target == 2

    def test_min_shards_clamp_restores_a_dead_lane(self):
        # Zero live shards (crashes outpaced the supervisor) must come
        # back as an explicit scale decision, not a "hold".
        policy = AutoscalePolicy(min_shards=1, max_shards=4)
        decision = policy.decide(0, 0, 0)
        assert decision.target == 1
        assert decision.reason == "min-shards"

    def test_pure_function(self):
        policy = AutoscalePolicy(max_shards=4, sustain_up=2)
        a = policy.decide(2, 7, 1, deadline_slack=0.4)
        b = policy.decide(2, 7, 1, deadline_slack=0.4)
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError, match="max_shards"):
            AutoscalePolicy(min_shards=3, max_shards=2)
        with pytest.raises(ValueError, match="sustain_up"):
            AutoscalePolicy(sustain_up=0)


# ------------------------------------------------------------------ #
# ServerConfig: one validated shape, aliases kept alive
# ------------------------------------------------------------------ #
class TestServerConfig:
    def test_field_validation(self):
        with pytest.raises(ValueError, match="max_batch"):
            ServerConfig(max_batch=0)
        with pytest.raises(ValueError, match="serve_workers"):
            ServerConfig(serve_workers=0)
        with pytest.raises(ValueError, match="admission"):
            ServerConfig(admission="dynamic")
        with pytest.raises(ValueError, match="thread"):
            ServerConfig(serve_workers=2, shard_backend="thread")
        with pytest.raises(ValueError, match="max_pending"):
            ServerConfig(max_pending=0)
        with pytest.raises(ValueError, match="resume_pending"):
            ServerConfig(max_pending=4, resume_pending=4)

    def test_autoscale_implies_shared_admission(self):
        config = ServerConfig(autoscale=AutoscalePolicy(max_shards=3))
        assert config.admission == "shared"
        assert config.pool_workers == 3

    def test_deprecated_kwargs_work_with_one_warning(self, spec, clips,
                                                     serial_result):
        with pytest.warns(DeprecationWarning, match="ServerConfig"):
            runtime = ServingRuntime(spec, max_batch=4)
        assert runtime.max_batch == 4
        _assert_identical(runtime.serve(_requests(clips)), serial_result)

    def test_config_plus_kwargs_rejected(self, spec):
        with pytest.raises(TypeError, match="not both"):
            ServingRuntime(spec, ServerConfig(max_batch=2), serve_workers=2)

    def test_unknown_kwarg_rejected(self, spec):
        with pytest.raises(TypeError, match="max_batch"):
            ServingRuntime(spec, shard_count=2)

    def test_fault_plan_unknown_lane_rejected_for_elastic_fleet(self, spec):
        # Validation lives where the router is: an autoscaled (elastic)
        # config passes the structural check but still rejects a plan
        # naming a lane the router does not serve.
        plan = FaultPlan(events=(FaultEvent("kill", at=0.01, lane="hd"),))
        with pytest.raises(ValueError, match="lane"):
            ServingRuntime(spec, ServerConfig(
                fault_plan=plan,
                autoscale=AutoscalePolicy(max_shards=2),
            ))


# ------------------------------------------------------------------ #
# Request sources: every adapter serves identically to the list path
# ------------------------------------------------------------------ #
class TestRequestSources:
    def test_generator_serves_identically_to_list(self, spec, clips,
                                                  serial_result):
        requests = _requests(clips)
        report = ServingRuntime(spec, ServerConfig(max_batch=4)).serve(
            request for request in requests
        )
        _assert_identical(report, serial_result)

    def test_iterator_source_rejects_time_travel(self):
        source = IteratorSource(iter([
            ClipRequest(request_id="a",
                        clip=synthetic_workload(1, num_frames=2)[0],
                        arrival_time=1.0),
            ClipRequest(request_id="b",
                        clip=synthetic_workload(1, num_frames=2)[0],
                        arrival_time=0.5),
        ]))
        source.pull()
        with pytest.raises(ValueError, match="nondecreasing"):
            source.pull()

    def test_as_request_source_rejects_garbage(self):
        with pytest.raises(TypeError, match="RequestSource"):
            as_request_source(42)

    def test_queue_source_backpressure(self):
        source = QueueSource(maxsize=2)
        clip = synthetic_workload(1, num_frames=2)[0]
        source.submit(ClipRequest(request_id=0, clip=clip))
        source.submit(ClipRequest(request_id=1, clip=clip))
        with pytest.raises(BackpressureError, match="full"):
            source.submit(ClipRequest(request_id=2, clip=clip))
        assert source.pull() is not None  # the server drains one slot
        source.submit(ClipRequest(request_id=2, clip=clip))
        source.close()
        with pytest.raises(ValueError, match="closed"):
            source.submit(ClipRequest(request_id=3, clip=clip))

    def test_live_queue_source_serves_while_producing(self, spec, clips,
                                                      serial_result):
        source = QueueSource()
        requests = _requests(clips)

        def produce():
            for request in requests:
                source.submit(request)
                time.sleep(0.002)
            source.close()

        producer = threading.Thread(target=produce)
        producer.start()
        try:
            report = ServingRuntime(spec, ServerConfig(max_batch=4)).serve(
                source
            )
        finally:
            producer.join()
        _assert_identical(report, serial_result)

    def test_watermark_pauses_ingestion(self, spec, clips, serial_result):
        report = ServingRuntime(spec, ServerConfig(
            max_batch=1, max_pending=2,
        )).serve(_requests(clips))
        _assert_identical(report, serial_result)
        assert report.backpressure_pauses >= 1

    def test_list_source_duplicate_ids_still_fail_fast(self, spec, clips):
        requests = _requests(clips[:3])
        requests[2] = ClipRequest(request_id=0, clip=clips[2])
        runtime = ServingRuntime(spec, ServerConfig(max_batch=4))
        with pytest.raises(Exception, match="duplicate request_id"):
            runtime.serve(requests)


# ------------------------------------------------------------------ #
# Autoscaled serving: elastic fleet, bit-identical results
# ------------------------------------------------------------------ #
class TestAutoscaledServing:
    def test_autoscaled_matches_fixed_shards_and_serial(self, spec, clips,
                                                        serial_result):
        arrivals = bursty_arrival_times(
            len(clips), burst_size=5, period=0.05, spread=0.005, seed=3
        )
        requests = _requests(clips, arrivals)
        fixed = ServingRuntime(spec, ServerConfig(
            max_batch=2, serve_workers=2, admission="shared",
            shard_backend="serial",
        )).serve(requests)
        scaled = ServingRuntime(spec, ServerConfig(
            max_batch=2, shard_backend="serial",
            autoscale=AutoscalePolicy(max_shards=4, sustain_up=1),
        )).serve(requests)
        assert _signatures(fixed) == _signatures(scaled)
        _assert_identical(scaled, serial_result)
        assert scaled.scale_events, "a burst of 5 over 1 shard must scale"
        peak = max(event.to_shards for event in scaled.scale_events)
        assert peak <= 4

    def test_scale_down_trace_stays_identical(self, spec, clips,
                                              serial_result):
        # A hot burst then a sparse tail: the fleet grows, drains back
        # down mid-trace, and the tail requests still serve identically.
        arrivals = [0.0] * 5 + [0.2 + 0.2 * i for i in range(5)]
        requests = _requests(clips, arrivals)
        scaled = ServingRuntime(spec, ServerConfig(
            max_batch=2, shard_backend="serial",
            autoscale=AutoscalePolicy(
                max_shards=3, sustain_up=1, sustain_down=2,
            ),
        )).serve(requests)
        _assert_identical(scaled, serial_result)
        directions = {
            "up" if e.to_shards > e.from_shards else "down"
            for e in scaled.scale_events
        }
        assert directions == {"up", "down"}

    def test_process_autoscale_smoke(self, spec, clips, serial_result):
        requests = _requests(
            clips, bursty_arrival_times(len(clips), 5, 0.05, seed=3)
        )
        report = ServingRuntime(spec, ServerConfig(
            max_batch=2, shard_backend="process",
            autoscale=AutoscalePolicy(max_shards=2, sustain_up=1),
        )).serve(requests)
        _assert_identical(report, serial_result)


# ------------------------------------------------------------------ #
# Virtual-time process admission
# ------------------------------------------------------------------ #
class TestVirtualTime:
    def test_sparse_trace_finishes_early_and_identically(self, spec, clips,
                                                         serial_result):
        gap = 1.0
        requests = _requests(clips, [gap * i for i in range(len(clips))])
        simulated = gap * (len(clips) - 1)
        start = time.perf_counter()
        report = ServingRuntime(spec, ServerConfig(
            max_batch=2, serve_workers=2, admission="shared",
            shard_backend="process", virtual_time=True,
        )).serve(requests)
        elapsed = time.perf_counter() - start
        _assert_identical(report, serial_result)
        assert elapsed < simulated / 2, (
            f"virtual time took {elapsed:.1f}s against a "
            f"{simulated:.0f}s simulated trace"
        )
