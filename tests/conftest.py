"""Shared fixtures.

Trained networks come from the model zoo (disk-cached after first
training), so the expensive fixtures are session-scoped.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.train import get_trained_network
from repro.video import build_clipset, generate_clip, scenario


@pytest.fixture(scope="session")
def trained_alexnet():
    return get_trained_network("mini_alexnet")


@pytest.fixture(scope="session")
def trained_fasterm():
    return get_trained_network("mini_fasterm")


@pytest.fixture(scope="session")
def trained_faster16():
    return get_trained_network("mini_faster16")


@pytest.fixture(scope="session")
def pan_clip():
    """A camera-pan clip: strong global motion."""
    return generate_clip(scenario("camera_pan"), seed=101)


@pytest.fixture(scope="session")
def linear_clip():
    """A single-object linear-motion clip."""
    return generate_clip(scenario("linear_motion"), seed=102)


@pytest.fixture(scope="session")
def occlusion_clip():
    """A clip with a crossing occluder."""
    return generate_clip(scenario("occlusion"), seed=103)


@pytest.fixture(scope="session")
def tiny_test_set():
    """A small held-out test split for metric checks."""
    return build_clipset("test", clips_per_scenario=1, num_frames=8)


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)
