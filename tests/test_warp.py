"""Activation warping tests, including the paper's central commutativity
property: convolution commutes with translation (Fig. 3 / Fig. 4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.receptive_field import ReceptiveField
from repro.core.warp import scale_to_activation, warp_activation, warp_cost_interpolations
from repro.hardware.fixed_point import Q8_8
from repro.motion.vector_field import VectorField, zero_field
from repro.nn import functional as F


def uniform_field(height, width, dy, dx):
    data = np.zeros((height, width, 2))
    data[..., 0] = dy
    data[..., 1] = dx
    return VectorField(data)


class TestWarpBasics:
    def test_zero_field_is_identity(self, rng):
        act = rng.normal(size=(4, 8, 8))
        out = warp_activation(act, zero_field(8, 8))
        np.testing.assert_allclose(out, act)

    def test_integer_shift_exact_interior(self, rng):
        act = rng.normal(size=(2, 8, 8))
        out = warp_activation(act, uniform_field(8, 8, 1, 0))
        # out[y] = act[y+1] for all but the last row (clamped).
        np.testing.assert_allclose(out[:, :7, :], act[:, 1:, :])

    def test_border_clamping(self, rng):
        act = rng.normal(size=(1, 4, 4))
        out = warp_activation(act, uniform_field(4, 4, 10, 10))
        # Every sample lands on the bottom-right corner.
        np.testing.assert_allclose(out, act[:, 3:4, 3:4] * np.ones((1, 4, 4)))

    def test_fractional_shift_is_linear_interpolation(self):
        act = np.zeros((1, 1, 4))
        act[0, 0] = [0.0, 1.0, 2.0, 3.0]
        out = warp_activation(act, uniform_field(1, 4, 0, 0.5))
        np.testing.assert_allclose(out[0, 0, :3], [0.5, 1.5, 2.5])

    def test_nearest_snaps(self):
        act = np.zeros((1, 1, 4))
        act[0, 0] = [0.0, 1.0, 2.0, 3.0]
        out = warp_activation(act, uniform_field(1, 4, 0, 0.4), interpolation="nearest")
        np.testing.assert_allclose(out[0, 0], [0.0, 1.0, 2.0, 3.0])

    def test_bad_interpolation_name(self, rng):
        with pytest.raises(ValueError):
            warp_activation(rng.normal(size=(1, 4, 4)), zero_field(4, 4), "cubic")

    def test_grid_mismatch(self, rng):
        with pytest.raises(ValueError):
            warp_activation(rng.normal(size=(1, 4, 4)), zero_field(8, 8))

    def test_non_3d_activation(self, rng):
        with pytest.raises(ValueError):
            warp_activation(rng.normal(size=(4, 4)), zero_field(4, 4))


class TestScaleToActivation:
    def test_divides_by_stride(self):
        field = uniform_field(4, 4, 8, -4)
        rf = ReceptiveField(size=16, stride=8, padding=0)
        scaled = scale_to_activation(field, rf)
        np.testing.assert_allclose(scaled.data[..., 0], 1.0)
        np.testing.assert_allclose(scaled.data[..., 1], -0.5)


class TestCommutativity:
    """The paper's core insight: f(delta(x)) == delta'(f(x)) for
    convolutional f and translation delta (Fig. 3)."""

    def test_conv_commutes_with_stride_aligned_translation(self, rng):
        x = rng.normal(size=(1, 1, 16, 16))
        weight = rng.normal(size=(2, 1, 3, 3))
        bias = np.zeros(2)
        shift = 2  # stride 2 conv, shift = stride -> one output cell

        shifted = np.zeros_like(x)
        shifted[:, :, :, shift:] = x[:, :, :, :-shift]

        out_orig, _ = F.conv2d_forward(x, weight, bias, stride=2, pad=1)
        out_shifted, _ = F.conv2d_forward(shifted, weight, bias, stride=2, pad=1)

        # Warping the original output right by shift/stride = 1 cell should
        # reproduce the shifted input's output away from the entering edge.
        rf = ReceptiveField(size=3, stride=2, padding=1)
        field = scale_to_activation(
            uniform_field(out_orig.shape[2], out_orig.shape[3], 0, -shift), rf
        )
        warped = warp_activation(out_orig[0], field)
        np.testing.assert_allclose(
            warped[:, :, 2:], out_shifted[0][:, :, 2:], atol=1e-10
        )

    def test_maxpool_commutes_with_pool_aligned_translation(self, rng):
        """Fig. 4b: translation by the pooling stride commutes exactly."""
        x = rng.normal(size=(1, 1, 8, 8))
        shifted = np.zeros_like(x)
        shifted[:, :, :, 2:] = x[:, :, :, :-2]
        out, _ = F.maxpool2d_forward(x, 2, 2)
        out_shifted, _ = F.maxpool2d_forward(shifted, 2, 2)
        np.testing.assert_allclose(out_shifted[:, :, :, 1:], out[:, :, :, :-1])

    def test_maxpool_breaks_on_unaligned_translation(self):
        """Fig. 4e: a 1-pixel shift through a stride-2 pool does not
        commute in general."""
        x = np.zeros((1, 1, 4, 4))
        x[0, 0, 1, 1] = 1.0
        x[0, 0, 0, 0] = 0.5
        shifted = np.zeros_like(x)
        shifted[:, :, :, 1:] = x[:, :, :, :-1]
        out, _ = F.maxpool2d_forward(x, 2, 2)
        out_shifted, _ = F.maxpool2d_forward(shifted, 2, 2)
        # The pooled outputs are NOT a translation of each other.
        assert not np.allclose(out_shifted[0, 0], out[0, 0])


class TestFixedPointWarp:
    def test_close_to_float(self, rng):
        act = rng.uniform(0, 4, size=(4, 8, 8))
        field = uniform_field(8, 8, 0.5, -0.25)
        exact = warp_activation(act, field)
        fixed = warp_activation(act, field, fixed_point=Q8_8)
        assert np.abs(exact - fixed).max() < 0.1

    def test_zero_field_quantizes_only(self, rng):
        act = rng.uniform(0, 4, size=(2, 4, 4))
        fixed = warp_activation(act, zero_field(4, 4), fixed_point=Q8_8)
        np.testing.assert_allclose(fixed, Q8_8.roundtrip(act), atol=Q8_8.resolution)


class TestWarpCost:
    def test_interpolation_count(self):
        assert warp_cost_interpolations((8, 8), 16) == 1024


@settings(max_examples=20, deadline=None)
@given(
    dy=st.floats(-2, 2, allow_nan=False),
    dx=st.floats(-2, 2, allow_nan=False),
)
def test_warp_preserves_value_range(dy, dx):
    """Bilinear interpolation is a convex combination: output values stay
    within the input min/max."""
    rng = np.random.default_rng(7)
    act = rng.uniform(-1, 1, size=(3, 8, 8))
    out = warp_activation(act, uniform_field(8, 8, dy, dx))
    assert out.max() <= act.max() + 1e-12
    assert out.min() >= act.min() - 1e-12


class TestWarpBatch:
    """warp_activation_batch must equal per-clip warps bit for bit — the
    contract that lets the lockstep runtime warp all clips in one call."""

    @pytest.fixture()
    def stack(self, rng):
        acts = rng.uniform(-2, 4, size=(5, 6, 8, 8))
        fields = [
            VectorField(rng.uniform(-2.5, 2.5, (8, 8, 2))) for _ in range(5)
        ]
        return acts, fields

    @pytest.mark.parametrize("interpolation", ["bilinear", "nearest"])
    def test_rows_match_single_warp(self, stack, interpolation):
        from repro.core.warp import warp_activation_batch

        acts, fields = stack
        got = warp_activation_batch(acts, fields, interpolation=interpolation)
        for b in range(len(fields)):
            want = warp_activation(acts[b], fields[b], interpolation=interpolation)
            np.testing.assert_array_equal(got[b], want)

    def test_fixed_point_rows_match(self, stack):
        from repro.core.warp import warp_activation_batch

        acts, fields = stack
        got = warp_activation_batch(acts, fields, fixed_point=Q8_8)
        for b in range(len(fields)):
            want = warp_activation(acts[b], fields[b], fixed_point=Q8_8)
            np.testing.assert_array_equal(got[b], want)

    def test_shape_validation(self, stack):
        from repro.core.warp import warp_activation_batch

        acts, fields = stack
        with pytest.raises(ValueError):
            warp_activation_batch(acts[0], fields)  # not 4-D
        with pytest.raises(ValueError):
            warp_activation_batch(acts, fields[:-1])  # count mismatch
        with pytest.raises(ValueError):
            warp_activation_batch(acts, [zero_field(4, 4)] * 5)  # grid mismatch

    def test_float32_follows_activation_dtype(self, stack):
        from repro.core.warp import warp_activation_batch

        acts, fields = stack
        out = warp_activation_batch(acts.astype(np.float32), fields)
        assert out.dtype == np.float32
