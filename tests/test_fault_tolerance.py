"""Fault-tolerance tests: supervision, shedding, deterministic injection.

The differential contract extends serving's bit-identity one: a serve
with injected faults (shard kills, stalls, dropped acks) must complete
every non-shed request with results bit-identical to the fault-free
serial run, and every recovery must be *accounted* — failover/retry
counters exact, shed requests named, nothing silently dropped and
nothing hung.  The inline discrete-event backend makes the whole thing
deterministic (FakeClock virtual time), so every scenario here is
replayable; the process-backend chaos test exercises the same plan
against real crashing processes under a watchdog.

CI hooks (mirroring the churn-fuzz harness):

* ``REPRO_CHAOS_SEEDS`` — space/comma-separated seed list overriding the
  default set, so CI can matrix one seed per job.
* ``REPRO_CHAOS_TRACE_DIR`` — when set, each fault plan is dumped there
  as JSON *before* the assertions run, so a failing seed's plan survives
  as an artifact (replayable via ``FaultPlan.load``).
"""

import os
import threading

import numpy as np
import pytest

from repro.core.sad_kernel import get_kernel
from repro.runtime import (
    ClipRequest,
    DuplicateRequestError,
    FaultEvent,
    FaultPlan,
    PipelineSpec,
    RequestShedError,
    SchedulerConfig,
    ServerConfig,
    ServingRuntime,
    ShardCrashError,
    ShardPool,
    SupervisorConfig,
    run_workload,
    synthetic_workload,
)

NETWORK = "mini_fasterm"
DEFAULT_SEEDS = (0, 1, 2)

#: RFBME host lanes the chaos fuzz runs in (see test_churn_fuzz).
LANES = [
    pytest.param(
        "kernel",
        marks=pytest.mark.skipif(
            get_kernel() is None, reason="compiled SAD kernel unavailable"
        ),
    ),
    pytest.param("batched"),
]


def _chaos_seeds():
    env = os.environ.get("REPRO_CHAOS_SEEDS", "").replace(",", " ").split()
    return tuple(int(token) for token in env) if env else DEFAULT_SEEDS


class FakeClock:
    """Manually advanced clock (see test_serving): each reading moves
    time one tick, so the inline DES is fully deterministic."""

    def __init__(self, tick: float = 0.001):
        self.now = 0.0
        self.tick = tick

    def __call__(self) -> float:
        self.now += self.tick
        return self.now


@pytest.fixture(scope="module")
def spec():
    spec = PipelineSpec(network=NETWORK)
    spec.warm()
    return spec


@pytest.fixture(scope="module")
def clips():
    return synthetic_workload(8, num_frames=6, base_seed=11)


@pytest.fixture(scope="module")
def serial_result(spec, clips):
    return run_workload(spec, clips, batch=False)


def _requests(clips, arrivals=None, deadlines=None):
    arrivals = arrivals or [0.002 * i for i in range(len(clips))]
    deadlines = deadlines or [None] * len(clips)
    return [
        ClipRequest(request_id=i, clip=clip, arrival_time=t, deadline=d)
        for i, (clip, t, d) in enumerate(zip(clips, arrivals, deadlines))
    ]


def _serve_faulted(spec, requests, plan, supervisor=None, capacity=2,
                   backend="serial"):
    """A 2-shard shared-admission serve with ``plan`` injected."""
    runtime = ServingRuntime(
        spec,
        ServerConfig(max_batch=capacity,
        serve_workers=2,
        shard_backend=backend,
        admission="shared",
        clock=FakeClock(),
        fault_plan=plan,
        supervisor=supervisor or SupervisorConfig(
            heartbeat_timeout=0.003, max_respawns=1
        )),
    )
    return runtime.serve(requests)


def _assert_identical_by_id(report, requests, serial):
    """Every completed request bit-identical to its serial run, keyed by
    request id — positional matching would silently misattribute results
    the moment anything is shed or reordered."""
    expected = {
        request.request_id: result
        for request, result in zip(requests, serial.results)
    }
    assert report.records, "serve completed nothing"
    for record in report.records:
        want = expected[record.request_id]
        np.testing.assert_array_equal(record.result.outputs(), want.outputs())
        np.testing.assert_array_equal(
            record.result.key_mask(), want.key_mask()
        )


def _assert_recovery_accounted(report):
    """Counters agree with per-record and per-event accounting exactly."""
    by_outcome = report.outcome_counts()
    assert report.failovers == sum(
        len(event.seqs) for event in report.failover_events
    )
    assert by_outcome.get("failover", 0) <= report.failovers
    assert sum(by_outcome.values()) == len(report.records)
    assert report.num_shed == len(report.shed)


class TestInlineFaultDifferential:
    """The DES backend honours fault plans deterministically."""

    def test_kill_fails_over_bit_identical(self, spec, clips, serial_result):
        plan = FaultPlan(events=(
            FaultEvent("kill", at=0.008, lane="default", shard=1),
        ))
        requests = _requests(clips)
        report = _serve_faulted(spec, requests, plan)
        assert len(report.records) == len(clips)
        assert report.failovers == 1
        (event,) = report.failover_events
        assert (event.lane, event.shard, event.reason) == ("default", 1, "crash")
        assert event.seqs == (2,)
        assert report.outcome_counts() == {"served": 7, "failover": 1}
        recovered = next(
            r for r in report.records if r.outcome == "failover"
        )
        assert recovered.attempts == 2
        _assert_recovery_accounted(report)
        _assert_identical_by_id(report, requests, serial_result)

    def test_kill_is_deterministic(self, spec, clips):
        plan = FaultPlan(events=(
            FaultEvent("kill", at=0.008, lane="default", shard=1),
        ))
        first = _serve_faulted(spec, _requests(clips), plan)
        second = _serve_faulted(spec, _requests(clips), plan)
        assert first.failover_events == second.failover_events
        assert first.outcome_counts() == second.outcome_counts()
        for a, b in zip(first.records, second.records):
            assert (a.request_id, a.outcome, a.shard, a.attempts) == \
                (b.request_id, b.outcome, b.shard, b.attempts)
            np.testing.assert_array_equal(
                a.result.outputs(), b.result.outputs()
            )

    def test_dropped_ack_is_retried(self, spec, clips, serial_result):
        plan = FaultPlan(events=(
            FaultEvent("drop_ack", at=0.01, lane="default", shard=0),
        ))
        requests = _requests(clips)
        report = _serve_faulted(
            spec, requests, plan,
            supervisor=SupervisorConfig(
                heartbeat_timeout=0.003, ack_timeout=0.005, max_respawns=1
            ),
        )
        assert report.retries == 1
        assert report.failovers == 0
        assert report.outcome_counts() == {"served": 7, "retried": 1}
        assert len(report.records) == len(clips)
        _assert_identical_by_id(report, requests, serial_result)

    def test_long_stall_fails_over_as_stall(self, spec, clips, serial_result):
        plan = FaultPlan(events=(
            FaultEvent("stall", at=0.008, lane="default", shard=1, steps=50),
        ))
        requests = _requests(clips)
        report = _serve_faulted(spec, requests, plan)
        assert report.failover_events
        assert {e.reason for e in report.failover_events} == {"stall"}
        assert len(report.records) == len(clips)
        _assert_recovery_accounted(report)
        _assert_identical_by_id(report, requests, serial_result)

    def test_short_stall_is_tolerated(self, spec, clips, serial_result):
        """A stall inside the heartbeat window is latency, not death."""
        plan = FaultPlan(events=(
            FaultEvent("stall", at=0.008, lane="default", shard=1, steps=2),
        ))
        requests = _requests(clips)
        report = _serve_faulted(spec, requests, plan)
        assert report.failovers == 0
        assert not report.failover_events
        assert len(report.records) == len(clips)
        _assert_identical_by_id(report, requests, serial_result)

    def test_total_loss_raises_named_error(self, spec, clips):
        plan = FaultPlan(events=(
            FaultEvent("kill", at=0.006, lane="default", shard=0),
            FaultEvent("kill", at=0.008, lane="default", shard=1),
        ))
        with pytest.raises(ShardCrashError, match="respawn budget") as info:
            _serve_faulted(
                spec, _requests(clips), plan,
                supervisor=SupervisorConfig(
                    heartbeat_timeout=0.003, max_respawns=0
                ),
            )
        assert info.value.lost, "error must name the unresolved requests"

    def test_respawn_recovers_total_loss(self, spec, clips, serial_result):
        plan = FaultPlan(events=(
            FaultEvent("kill", at=0.006, lane="default", shard=0),
            FaultEvent("kill", at=0.008, lane="default", shard=1),
        ))
        requests = _requests(clips)
        report = _serve_faulted(spec, requests, plan)
        assert report.respawns == 1
        assert any(event.respawned for event in report.failover_events)
        assert {info.shard for info in report.shards} == {0, 1, 2}
        assert len(report.records) == len(clips)
        _assert_recovery_accounted(report)
        _assert_identical_by_id(report, requests, serial_result)

    def test_fault_plan_requires_sharded_shared_admission(self, spec):
        plan = FaultPlan(events=(FaultEvent("kill", at=0.01),))
        with pytest.raises(ValueError, match="shared"):
            ServingRuntime(spec, ServerConfig(max_batch=2, fault_plan=plan))

    def test_fault_plan_unknown_lane_rejected(self, spec):
        plan = FaultPlan(events=(FaultEvent("kill", at=0.01, lane="hd"),))
        with pytest.raises(ValueError, match="lane"):
            ServingRuntime(
                spec, ServerConfig(max_batch=2, serve_workers=2, admission="shared",
                shard_backend="serial", fault_plan=plan),
            )


class TestSeededChaosFuzz:
    """Seeded end-to-end chaos: a generated plan of kills, stalls, and
    ack drops against the deterministic DES, differentially checked."""

    @pytest.mark.parametrize("backend", LANES)
    @pytest.mark.parametrize("seed", _chaos_seeds())
    def test_chaos_differential(self, seed, backend, clips):
        plan = FaultPlan.seeded(
            seed, shards_per_lane=2, horizon=0.02,
            kills=1, stalls=1, drops=1, stall_steps=(2, 4),
        )
        trace_dir = os.environ.get("REPRO_CHAOS_TRACE_DIR")
        if trace_dir:
            os.makedirs(trace_dir, exist_ok=True)
            plan.dump(os.path.join(
                trace_dir, f"chaos_seed{seed}_{backend}.json"
            ))
        spec = PipelineSpec(network=NETWORK, rfbme_backend=backend)
        spec.warm()
        serial = run_workload(spec, clips, batch=False)
        requests = _requests(clips)
        report = _serve_faulted(
            spec, requests, plan,
            supervisor=SupervisorConfig(
                heartbeat_timeout=0.003, ack_timeout=0.005, max_respawns=2
            ),
        )
        assert len(report.records) == len(clips), (
            f"seed {seed}: {len(clips) - len(report.records)} request(s) "
            f"lost (plan: {plan.to_json()})"
        )
        _assert_recovery_accounted(report)
        _assert_identical_by_id(report, requests, serial)

    def test_seeded_plans_are_reproducible(self, tmp_path):
        plan = FaultPlan.seeded(42, shards_per_lane=2, horizon=0.5)
        assert plan == FaultPlan.seeded(42, shards_per_lane=2, horizon=0.5)
        assert plan != FaultPlan.seeded(43, shards_per_lane=2, horizon=0.5)
        path = tmp_path / "plan.json"
        plan.dump(str(path))
        assert FaultPlan.load(str(path)) == plan

    def test_seeded_kills_never_wipe_a_lane(self):
        for seed in range(20):
            plan = FaultPlan.seeded(
                seed, shards_per_lane=2, horizon=1.0, kills=5
            )
            killed = {
                (e.lane, e.shard) for e in plan.events if e.kind == "kill"
            }
            assert len(killed) <= 1, "a seeded plan must leave a survivor"


class TestProcessChaos:
    """The acceptance demo: kill one of two real shard processes mid-
    trace; every request completes bit-identically, the failover is
    accounted exactly, and the serve cannot hang (watchdog-bounded)."""

    def test_kill_one_process_shard(self, spec, clips, serial_result):
        plan = FaultPlan(events=(
            FaultEvent("kill", at=0.001, lane="default", shard=1),
        ))
        requests = _requests(clips, arrivals=[0.0] * len(clips))
        runtime = ServingRuntime(
            spec,
            ServerConfig(max_batch=2,
            serve_workers=2,
            shard_backend="process",
            admission="shared",
            fault_plan=plan,
            supervisor=SupervisorConfig(
                heartbeat_timeout=5.0, max_respawns=0, drain_timeout=60.0
            )),
        )
        outcome = {}

        def run():
            try:
                outcome["report"] = runtime.serve(requests)
            except BaseException as error:  # noqa: BLE001 — re-raised below
                outcome["error"] = error

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        thread.join(timeout=240)
        assert not thread.is_alive(), "supervised chaos serve hung"
        if "error" in outcome:
            raise outcome["error"]
        report = outcome["report"]
        assert len(report.records) == len(clips)
        assert report.failover_events, "the kill was never detected"
        assert {(e.lane, e.shard, e.reason) for e in report.failover_events} \
            == {("default", 1, "crash")}
        _assert_recovery_accounted(report)
        assert report.outcome_counts().get("failover", 0) == report.failovers
        _assert_identical_by_id(report, requests, serial_result)


class TestShedding:
    """Deadline contract: still-queued past the deadline = shed with a
    named record; admitted = always served, late or not."""

    def test_queued_past_deadline_is_shed(self, spec):
        # Two blockers occupy both slots for 6 steps; the deadlined
        # request arrives behind them and expires before a slot frees.
        blockers = synthetic_workload(2, num_frames=6, base_seed=11)
        late = synthetic_workload(1, num_frames=6, base_seed=31)
        requests = _requests(
            blockers + late,
            arrivals=[0.0, 0.0, 0.002],
            deadlines=[None, None, 0.004],
        )
        report = ServingRuntime(
            spec, ServerConfig(max_batch=2, clock=FakeClock())
        ).serve(requests)
        assert report.num_shed == 1
        (record,) = report.shed
        assert record.request_id == 2
        assert record.deadline == 0.004
        assert record.lane == "default"
        assert len(report.records) == 2
        assert {r.request_id for r in report.records} == {0, 1}

    def test_shed_record_materializes_named_error(self, spec):
        blockers = synthetic_workload(2, num_frames=6, base_seed=11)
        late = synthetic_workload(1, num_frames=6, base_seed=31)
        report = ServingRuntime(
            spec, ServerConfig(max_batch=2, clock=FakeClock())
        ).serve(_requests(
            blockers + late,
            arrivals=[0.0, 0.0, 0.002],
            deadlines=[None, None, 0.004],
        ))
        error = report.shed[0].error
        assert isinstance(error, RequestShedError)
        assert "deadline" in str(error) and "shed" in str(error)
        assert error.request_id == 2
        assert error.deadline == 0.004

    def test_admitted_request_is_served_late_not_shed(self, spec):
        clips = synthetic_workload(1, num_frames=6, base_seed=11)
        # Admitted at the first boundary (before the deadline), first
        # output after it: a missed deadline, never a drop.
        report = ServingRuntime(
            spec, ServerConfig(max_batch=2, clock=FakeClock())
        ).serve(_requests(clips, arrivals=[0.0], deadlines=[0.0015]))
        assert report.num_shed == 0
        (record,) = report.records
        assert record.met_deadline is False
        assert record.outcome == "served"

    def test_met_deadline_accounting(self, spec):
        clips = synthetic_workload(1, num_frames=6, base_seed=11)
        report = ServingRuntime(
            spec, ServerConfig(max_batch=2, clock=FakeClock())
        ).serve(_requests(clips, arrivals=[0.0], deadlines=[10.0]))
        (record,) = report.records
        assert record.met_deadline is True
        no_deadline = ServingRuntime(
            spec, ServerConfig(max_batch=2, clock=FakeClock())
        ).serve(_requests(clips, arrivals=[0.0]))
        assert no_deadline.records[0].met_deadline is None

    def test_admission_is_earliest_deadline_first(self, spec):
        # One slot, one blocker; two waiters with inverted deadline vs
        # arrival order — the tighter deadline must be admitted first.
        blocker = synthetic_workload(1, num_frames=6, base_seed=11)
        waiters = synthetic_workload(2, num_frames=4, base_seed=47)
        requests = _requests(
            blocker + waiters,
            arrivals=[0.0, 0.002, 0.003],
            deadlines=[None, 10.0, 5.0],
        )
        report = ServingRuntime(
            spec, ServerConfig(max_batch=1, clock=FakeClock())
        ).serve(requests)
        assert report.num_shed == 0
        by_id = {r.request_id: r for r in report.records}
        assert by_id[2].admit_time < by_id[1].admit_time

    def test_deadline_before_arrival_rejected(self):
        clip = synthetic_workload(1, num_frames=2)[0]
        with pytest.raises(ValueError, match="deadline"):
            ClipRequest(
                request_id=0, clip=clip, arrival_time=1.0, deadline=0.5
            )


class TestDuplicateRequestIds:
    def test_duplicate_ids_rejected_naming_both(self, spec):
        clips = synthetic_workload(3, num_frames=2, base_seed=11)
        requests = _requests(clips)
        requests[2] = ClipRequest(
            request_id=0, clip=clips[2], arrival_time=0.004
        )
        with pytest.raises(DuplicateRequestError, match=r"#0.*#2"):
            ServingRuntime(spec, ServerConfig(max_batch=2)).serve(requests)

    def test_distinct_unhashable_ids_allowed(self, spec):
        clips = synthetic_workload(2, num_frames=2, base_seed=11)
        requests = [
            ClipRequest(request_id=["a", i], clip=clip, arrival_time=0.0)
            for i, clip in enumerate(clips)
        ]
        report = ServingRuntime(
            spec, ServerConfig(max_batch=2, clock=FakeClock())
        ).serve(requests)
        assert len(report.records) == 2


# ------------------------------------------------------------------ #
# ShardPool.map_with_feeder crash safety (module-level fns: picklable)
# ------------------------------------------------------------------ #
def _double_or_die(task):
    if task < 0:
        os._exit(7)  # simulated hard crash: no exception, no result
    return task * 2


def _raise_on_odd(task):
    if task % 2:
        raise ValueError(f"odd task {task}")
    return task


class TestMapWithFeederCrash:
    def _pool(self):
        return ShardPool(SchedulerConfig(workers=2, backend="process"))

    def test_worker_death_raises_instead_of_hanging(self):
        with pytest.raises(ShardCrashError, match="exit code 7") as info:
            self._pool().map_with_feeder(
                _double_or_die, [1, -1], feeder=lambda: None,
                join_timeout=60.0,
            )
        assert info.value.lost == (1,)

    def test_surviving_results_keep_order(self):
        assert self._pool().map_with_feeder(
            _double_or_die, [1, 2, 3], feeder=lambda: None,
            join_timeout=60.0,
        ) == [2, 4, 6]

    def test_worker_exception_is_transported(self):
        with pytest.raises(ValueError, match="odd task 3"):
            self._pool().map_with_feeder(
                _raise_on_odd, [2, 3], feeder=lambda: None,
                join_timeout=60.0,
            )
