"""Tests for the delta-network baseline executor."""

import numpy as np
import pytest

from repro.core.delta import DeltaExecutor
from repro.video import generate_clip, scenario


class TestDeltaExecutor:
    def test_first_frame_matches_network(self, trained_fasterm, linear_clip):
        executor = DeltaExecutor(trained_fasterm)
        out = executor.process_first(linear_clip.frames[0])
        plain = trained_fasterm.forward(linear_clip.frames[0][None, None])
        np.testing.assert_allclose(out, plain)

    def test_zero_threshold_is_exact(self, trained_fasterm, linear_clip):
        """With no thresholding, delta execution tracks the true network."""
        executor = DeltaExecutor(trained_fasterm, threshold=0.0)
        executor.process_first(linear_clip.frames[0])
        for t in (1, 3, 5):
            out, _ = executor.process_delta(linear_clip.frames[t])
            plain = trained_fasterm.forward(linear_clip.frames[t][None, None])
            np.testing.assert_allclose(out, plain, atol=1e-9)

    def test_small_threshold_close_to_exact(self, trained_fasterm, linear_clip):
        executor = DeltaExecutor(trained_fasterm, threshold=1e-3)
        executor.process_first(linear_clip.frames[0])
        out, _ = executor.process_delta(linear_clip.frames[2])
        plain = trained_fasterm.forward(linear_clip.frames[2][None, None])
        assert np.abs(out - plain).max() < 0.25

    def test_identical_frame_gives_full_saving(self, trained_fasterm, linear_clip):
        executor = DeltaExecutor(trained_fasterm, threshold=1e-6)
        executor.process_first(linear_clip.frames[0])
        _, stats = executor.process_delta(linear_clip.frames[0].copy())
        assert stats.effective_macs == 0
        assert stats.mac_saving == pytest.approx(1.0)

    def test_motion_reduces_saving(self, trained_fasterm):
        """Pans touch most pixels -> dense deltas -> little saving (§II)."""
        static = generate_clip(scenario("static"), seed=21, num_frames=4)
        pan = generate_clip(scenario("camera_pan"), seed=21, num_frames=4)
        savings = {}
        for label, clip in (("static", static), ("pan", pan)):
            executor = DeltaExecutor(trained_fasterm, threshold=0.02)
            executor.process_first(clip.frames[0])
            _, stats = executor.process_delta(clip.frames[2])
            savings[label] = stats.mac_saving
        assert savings["static"] > savings["pan"]

    def test_memory_counts_every_layer(self, trained_fasterm, linear_clip):
        executor = DeltaExecutor(trained_fasterm)
        executor.process_first(linear_clip.frames[0])
        # At minimum the input + first conv activation + final output.
        assert executor.memory_values() > 64 * 64 + 8 * 32 * 32

    def test_weights_loaded_every_frame(self, trained_fasterm, linear_clip):
        executor = DeltaExecutor(trained_fasterm)
        executor.process_first(linear_clip.frames[0])
        _, stats = executor.process_delta(linear_clip.frames[1])
        assert stats.weights_loaded == trained_fasterm.param_count()

    def test_delta_before_first_raises(self, trained_fasterm, linear_clip):
        executor = DeltaExecutor(trained_fasterm)
        with pytest.raises(RuntimeError):
            executor.process_delta(linear_clip.frames[0])

    def test_memory_before_first_raises(self, trained_fasterm):
        with pytest.raises(RuntimeError):
            DeltaExecutor(trained_fasterm).memory_values()

    def test_reset(self, trained_fasterm, linear_clip):
        executor = DeltaExecutor(trained_fasterm)
        executor.process_first(linear_clip.frames[0])
        executor.reset()
        assert not executor.has_state

    def test_invalid_threshold(self, trained_fasterm):
        with pytest.raises(ValueError):
            DeltaExecutor(trained_fasterm, threshold=-0.1)

    def test_frame_validation(self, trained_fasterm, rng):
        executor = DeltaExecutor(trained_fasterm)
        with pytest.raises(ValueError):
            executor.process_first(rng.normal(size=(32, 32)))
