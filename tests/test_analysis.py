"""Tests for the analysis package: first-order report, evaluation bridge,
and trade-off sweeps."""

import numpy as np
import pytest

from repro.analysis import (
    SweepPoint,
    classification_score,
    decode_detections,
    detection_score,
    first_order_report,
    run_policy,
    score_pipeline_results,
    select_configs,
    sweep_thresholds,
)
from repro.core import AMCExecutor, AlwaysKeyPolicy, StaticPolicy
from repro.core.pipeline import EVA2Pipeline
from repro.hardware import faster16_spec
from repro.video import generate_clip, scenario


class TestFirstOrder:
    def test_paper_headline_numbers(self):
        """§IV-A: 1.7e11 prefix MACs, ~3e9 unoptimized, ~1.3e7 RFBME."""
        spec = faster16_spec()
        size, stride, _ = spec.receptive_field("conv5_3")
        report = first_order_report(spec, "conv5_3", size, stride)
        assert report.prefix_macs == pytest.approx(1.7e11, rel=0.02)
        assert report.unoptimized_ops == pytest.approx(3e9, rel=0.05)
        assert report.rfbme_ops == pytest.approx(1.3e7, rel=0.12)

    def test_savings_ratio_is_four_orders_of_magnitude(self):
        spec = faster16_spec()
        size, stride, _ = spec.receptive_field("conv5_3")
        report = first_order_report(spec, "conv5_3", size, stride)
        assert report.savings_ratio > 1e4
        assert report.reuse_speedup > 100


class TestEvaluationBridge:
    def test_decode_detections_confidence_from_softmax(self):
        from repro.nn.models import DETECTION_OUTPUTS

        out = np.zeros((1, DETECTION_OUTPUTS))
        out[0, 2] = 10.0  # class 2 confident
        out[0, -4:] = [0.5, 0.5, 0.25, 0.25]
        dets = decode_detections(out, [7])
        assert dets[0].frame_id == 7
        assert dets[0].class_id == 2
        assert dets[0].confidence > 0.95
        assert dets[0].box == (32.0, 32.0, 16.0, 16.0)

    def test_decode_length_mismatch(self):
        from repro.nn.models import DETECTION_OUTPUTS

        with pytest.raises(ValueError):
            decode_detections(np.zeros((2, DETECTION_OUTPUTS)), [0])

    def test_classification_score_on_always_key(self, trained_alexnet):
        clips = [generate_clip(scenario("slow"), seed=s, num_frames=6) for s in (1, 2)]
        pipeline = EVA2Pipeline(AMCExecutor(trained_alexnet), AlwaysKeyPolicy())
        results = pipeline.run_clips(clips)
        score = classification_score(results, clips)
        assert 0.0 <= score <= 1.0

    def test_detection_score_on_always_key(self, trained_fasterm):
        clips = [generate_clip(scenario("slow"), seed=s, num_frames=6) for s in (3, 4)]
        pipeline = EVA2Pipeline(AMCExecutor(trained_fasterm), AlwaysKeyPolicy())
        results = pipeline.run_clips(clips)
        score = detection_score(results, clips)
        assert 0.0 <= score <= 1.0

    def test_unknown_task(self, trained_fasterm):
        with pytest.raises(ValueError):
            score_pipeline_results("segmentation", [], [])

    def test_misaligned_results_rejected(self, trained_fasterm):
        clip = generate_clip(scenario("slow"), seed=5, num_frames=6)
        pipeline = EVA2Pipeline(AMCExecutor(trained_fasterm), AlwaysKeyPolicy())
        results = pipeline.run_clips([clip])
        with pytest.raises(ValueError):
            detection_score(results, [])


class TestTradeoffSweep:
    @pytest.fixture(scope="class")
    def clips(self):
        return [
            generate_clip(scenario(name), seed=700 + i, num_frames=8)
            for i, name in enumerate(["slow", "linear_motion"])
        ]

    def test_run_policy(self, trained_fasterm, clips):
        accuracy, key_fraction = run_policy(
            AMCExecutor(trained_fasterm), StaticPolicy(4), clips, "detection"
        )
        assert 0.0 <= accuracy <= 1.0
        assert 0.2 < key_fraction < 0.4

    def test_sweep_monotone_key_fraction(self, trained_fasterm, clips):
        """Higher thresholds -> fewer key frames."""
        points = sweep_thresholds(
            AMCExecutor(trained_fasterm),
            clips,
            "detection",
            thresholds=[0.0, 15.0, 1e9],
        )
        fractions = [p.key_fraction for p in points]
        assert fractions[0] >= fractions[1] >= fractions[2]
        assert fractions[0] == 1.0  # threshold 0: everything is a key frame

    def test_sweep_unknown_metric(self, trained_fasterm, clips):
        with pytest.raises(ValueError):
            sweep_thresholds(
                AMCExecutor(trained_fasterm), clips, "detection", [1.0],
                metric="entropy",
            )

    def test_select_configs(self):
        points = [
            SweepPoint(threshold=0.0, key_fraction=1.0, accuracy=0.60),
            SweepPoint(threshold=1.0, key_fraction=0.5, accuracy=0.597),
            SweepPoint(threshold=2.0, key_fraction=0.3, accuracy=0.592),
            SweepPoint(threshold=3.0, key_fraction=0.1, accuracy=0.55),
        ]
        configs = select_configs(points, baseline_accuracy=0.60)
        assert configs["hi"].key_fraction == 0.5
        assert configs["med"].key_fraction == 0.3
        assert configs["lo"].key_fraction == 0.3  # 0.1 breaches the 2% budget

    def test_select_configs_fallback(self):
        points = [SweepPoint(threshold=5.0, key_fraction=0.2, accuracy=0.10)]
        configs = select_configs(points, baseline_accuracy=0.9)
        assert configs["hi"].accuracy == 0.10  # best available

    def test_select_configs_empty(self):
        with pytest.raises(ValueError):
            select_configs([], baseline_accuracy=0.5)
