"""Planned inference engine tests.

The engine's contract: every row of a planned (possibly batched) forward
is bitwise identical to running that sample alone through the
layer-by-layer training path — that is what lets the lockstep runtime
batch CNN execution across clips without changing a single result bit.
float32 mode is the explicit exception, covered by tolerance bounds.
"""

import numpy as np
import pytest

from repro.nn import InferencePlan
from repro.nn.train import get_trained_network

NETWORKS = ("mini_fasterm", "mini_alexnet", "mini_faster16")


@pytest.fixture(scope="module", params=NETWORKS)
def net(request):
    return get_trained_network(request.param)


@pytest.fixture(scope="module")
def frames():
    rng = np.random.default_rng(42)
    return rng.random((8, 1, 64, 64))


class TestBitIdentity:
    def test_rows_match_serial_forward(self, net, frames):
        plan = net.inference_plan(max_batch=8)
        for batch in (1, 3, 8):
            out = plan.run(frames[:batch])
            for s in range(batch):
                want = net.forward(frames[s : s + 1])[0]
                np.testing.assert_array_equal(out[s], want)

    def test_prefix_suffix_split(self, net, frames):
        plan = net.inference_plan(max_batch=4)
        target = net.last_spatial_layer()
        act = plan.run_prefix(frames[:4], target)
        out = plan.run_suffix(act, target)
        for s in range(4):
            act_want = net.forward_prefix(frames[s : s + 1], target)
            np.testing.assert_array_equal(act[s], act_want[0])
            np.testing.assert_array_equal(
                out[s], net.forward_suffix(act_want, target)[0]
            )

    def test_early_target_conv_suffix(self, net, frames):
        """A suffix containing convolutions (early AMC target) stays
        bitwise equal too — the Table II design-space paths."""
        plan = net.inference_plan(max_batch=4)
        target = net.spatial_layers()[1]
        act = plan.run_prefix(frames[:4], target)
        out = plan.run_suffix(act, target)
        for s in range(4):
            act_want = net.forward_prefix(frames[s : s + 1], target)
            np.testing.assert_array_equal(
                out[s], net.forward_suffix(act_want, target)[0]
            )

    def test_full_run_equals_prefix_plus_suffix(self, net, frames):
        plan = net.inference_plan(max_batch=2)
        target = net.last_spatial_layer()
        whole = plan.run(frames[:2])
        split = plan.run_suffix(plan.run_prefix(frames[:2], target), target)
        np.testing.assert_array_equal(whole, split)


class TestScratchReuse:
    def test_repeated_calls_are_deterministic(self, net, frames):
        plan = net.inference_plan(max_batch=4)
        first = plan.run(frames[:4])
        second = plan.run(frames[:4])
        assert first is not second
        np.testing.assert_array_equal(first, second)

    def test_results_are_owned_copies(self, net, frames):
        """Returned arrays must not alias reused scratch buffers."""
        plan = net.inference_plan(max_batch=2)
        first = plan.run(frames[:2]).copy()
        live = plan.run(frames[:2])
        plan.run(frames[2:4])  # overwrite scratch with different inputs
        np.testing.assert_array_equal(live, first)

    def test_buffers_persist_across_calls(self, net, frames):
        plan = net.inference_plan(max_batch=4)
        convs = [s for s in plan._steps if hasattr(s, "cols")]
        before = [id(s.cols) for s in convs]
        plan.run(frames[:4])
        plan.run(frames[:2])
        assert [id(s.cols) for s in convs] == before

    def test_smaller_batches_reuse_capacity(self, net, frames):
        plan = net.inference_plan(max_batch=8)
        for batch in (8, 1, 5, 2):
            out = plan.run(frames[:batch])
            for s in range(batch):
                np.testing.assert_array_equal(
                    out[s], net.forward(frames[s : s + 1])[0]
                )


class TestFloat32:
    def test_outputs_close_and_float32(self, net, frames):
        plan = net.inference_plan(max_batch=4, dtype="float32")
        out = plan.run(frames[:4])
        assert out.dtype == np.float32
        np.testing.assert_allclose(
            out, net.forward(frames[:4]), rtol=2e-4, atol=2e-4
        )

    def test_distinct_cache_entries(self, net):
        p64 = net.inference_plan(max_batch=2)
        p32 = net.inference_plan(max_batch=2, dtype="float32")
        assert p64 is not p32
        assert net.inference_plan(max_batch=2) is p64
        assert net.inference_plan(max_batch=2, dtype="float32") is p32


class TestPlanCache:
    def test_one_plan_per_dtype_grows_in_place(self, net):
        plan = net.inference_plan(max_batch=3)
        assert net.inference_plan(max_batch=3) is plan
        # A larger request grows the same plan instead of compiling a new
        # one; a smaller request reuses it at its grown capacity.
        assert net.inference_plan(max_batch=4) is plan
        assert plan.max_batch >= 4
        assert net.inference_plan(max_batch=2) is plan
        assert plan.max_batch >= 4

    def test_load_state_dict_invalidates(self, net):
        plan = net.inference_plan(max_batch=1)
        net.load_state_dict(net.state_dict())
        assert net.inference_plan(max_batch=1) is not plan

    def test_plans_follow_inplace_weight_updates(self, frames):
        """float64 plans read live parameters, so in-place optimizer-style
        updates are picked up without recompilation."""
        net = get_trained_network("mini_fasterm")
        plan = net.inference_plan(max_batch=1)
        before = plan.run(frames[:1])
        layer = net.layers[0]
        layer.params["weight"] += 0.01
        try:
            after = plan.run(frames[:1])
            want = net.forward(frames[:1])
            np.testing.assert_array_equal(after, want)
            assert not np.array_equal(after, before)
        finally:
            layer.params["weight"] -= 0.01


class TestCapacityChanges:
    """reserve()/shrink(): occupancy flexibility without recompilation."""

    def test_reserve_bit_identical_at_every_occupancy(self, net, frames):
        plan = InferencePlan(net, max_batch=2)
        serial = [net.forward(frames[s : s + 1])[0] for s in range(8)]
        plan.reserve(8)
        assert plan.max_batch == 8
        for occupancy in range(1, 9):
            out = plan.run(frames[:occupancy])
            for s in range(occupancy):
                np.testing.assert_array_equal(out[s], serial[s])

    def test_prefix_suffix_bit_identical_after_growth(self, net, frames):
        plan = InferencePlan(net, max_batch=1).reserve(6)
        target = net.last_spatial_layer()
        for occupancy in range(1, 7):
            act = plan.run_prefix(frames[:occupancy], target)
            out = plan.run_suffix(act, target)
            for s in range(occupancy):
                act_want = net.forward_prefix(frames[s : s + 1], target)
                np.testing.assert_array_equal(act[s], act_want[0])
                np.testing.assert_array_equal(
                    out[s], net.forward_suffix(act_want, target)[0]
                )

    def test_shrink_releases_then_regrows(self, net, frames):
        plan = InferencePlan(net, max_batch=6)
        want = plan.run(frames[:6]).copy()
        plan.shrink(2)
        assert plan.max_batch == 2
        with pytest.raises(ValueError):
            plan.run(frames[:3])
        np.testing.assert_array_equal(plan.run(frames[:2]), want[:2])
        plan.reserve(6)
        np.testing.assert_array_equal(plan.run(frames[:6]), want)

    def test_float32_snapshots_survive_resize(self, net, frames):
        plan = InferencePlan(net, max_batch=2, dtype="float32")
        want = plan.run(frames[:2]).copy()
        plan.reserve(5).shrink(2)
        np.testing.assert_array_equal(plan.run(frames[:2]), want)

    def test_reserve_noop_when_large_enough(self, net):
        plan = InferencePlan(net, max_batch=4)
        convs = [id(s.cols) for s in plan._steps if hasattr(s, "cols")]
        plan.reserve(3)
        assert plan.max_batch == 4
        assert [id(s.cols) for s in plan._steps if hasattr(s, "cols")] == convs

    def test_bad_capacity_rejected(self, net):
        plan = InferencePlan(net, max_batch=1)
        with pytest.raises(ValueError):
            plan.reserve(0)
        with pytest.raises(ValueError):
            plan.shrink(0)


class TestValidation:
    def test_batch_over_capacity_rejected(self, net, frames):
        plan = InferencePlan(net, max_batch=2)
        with pytest.raises(ValueError):
            plan.run(frames[:3])

    def test_wrong_shape_rejected(self, net):
        plan = net.inference_plan(max_batch=1)
        with pytest.raises(ValueError):
            plan.run(np.zeros((1, 1, 32, 32)))

    def test_empty_batch_rejected(self, net):
        plan = net.inference_plan(max_batch=1)
        with pytest.raises(ValueError):
            plan.run(np.zeros((0, 1, 64, 64)))

    def test_bad_dtype_rejected(self, net):
        with pytest.raises(ValueError):
            InferencePlan(net, max_batch=1, dtype="float16")

    def test_bad_capacity_rejected(self, net):
        with pytest.raises(ValueError):
            InferencePlan(net, max_batch=0)
