"""Runtime-layer tests: spec building, workload construction, scheduler
backends, and the lockstep BatchedPipeline — including the contract that
every execution path produces results identical to the serial loop."""

import numpy as np
import pytest

from repro.core import EVA2Pipeline, MatchErrorPolicy, StaticPolicy
from repro.runtime import (
    BatchedPipeline,
    ClipScheduler,
    PipelineSpec,
    SchedulerConfig,
    poisson_arrival_times,
    run_workload,
    slack_deadlines,
    synthetic_workload,
)

NETWORK = "mini_fasterm"


@pytest.fixture(scope="module")
def spec():
    spec = PipelineSpec(network=NETWORK)
    spec.warm()
    return spec


@pytest.fixture(scope="module")
def workload():
    return synthetic_workload(4, num_frames=6, base_seed=7)


@pytest.fixture(scope="module")
def serial_result(spec, workload):
    return run_workload(spec, workload, batch=False)


class TestPipelineSpec:
    def test_build_produces_pipeline(self, spec):
        pipeline = spec.build()
        assert isinstance(pipeline, EVA2Pipeline)
        assert isinstance(pipeline.policy, MatchErrorPolicy)

    def test_policy_selection(self):
        assert isinstance(
            PipelineSpec(policy="static", interval=3).build_policy(), StaticPolicy
        )

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            PipelineSpec(policy="oracle")

    def test_bad_rfbme_backend_rejected_at_construction(self):
        with pytest.raises(ValueError):
            PipelineSpec(rfbme_backend="batch")

    def test_bad_mode_rejected_at_construction(self):
        with pytest.raises(ValueError):
            PipelineSpec(mode="teleport")

    def test_unknown_network_rejected_at_construction(self):
        with pytest.raises(ValueError):
            PipelineSpec(network="mini_fastrm")

    def test_paper_mode_defaults(self):
        assert PipelineSpec(network="mini_alexnet").amc_config().mode == "memoize"
        assert PipelineSpec(network="mini_fasterm").amc_config().mode == "warp"

    def test_picklable(self, spec):
        import pickle

        assert pickle.loads(pickle.dumps(spec)) == spec


class TestSyntheticWorkload:
    def test_deterministic(self):
        a = synthetic_workload(3, num_frames=4, base_seed=5)
        b = synthetic_workload(3, num_frames=4, base_seed=5)
        for clip_a, clip_b in zip(a, b):
            np.testing.assert_array_equal(clip_a.frames, clip_b.frames)

    def test_mixes_scenarios(self):
        clips = synthetic_workload(6, num_frames=4)
        assert len({clip.scenario for clip in clips}) > 1

    def test_scenario_restriction(self):
        clips = synthetic_workload(3, num_frames=4, scenarios=["static"])
        assert {clip.scenario for clip in clips} == {"static"}

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            synthetic_workload(0)


class TestPoissonArrivals:
    def test_seed_stability(self):
        assert poisson_arrival_times(16, rate=100.0, seed=9) == \
            poisson_arrival_times(16, rate=100.0, seed=9)

    def test_seeds_diverge(self):
        assert poisson_arrival_times(16, rate=100.0, seed=1) != \
            poisson_arrival_times(16, rate=100.0, seed=2)

    def test_monotone_nondecreasing(self):
        arrivals = poisson_arrival_times(32, rate=250.0, seed=4)
        assert all(b >= a for a, b in zip(arrivals, arrivals[1:]))
        assert all(t > 0 for t in arrivals)

    def test_zero_arrivals_is_empty(self):
        assert poisson_arrival_times(0, rate=10.0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError, match="num_arrivals"):
            poisson_arrival_times(-1, rate=10.0)

    @pytest.mark.parametrize("rate", [0.0, -3.5])
    def test_nonpositive_rate_rejected(self, rate):
        with pytest.raises(ValueError, match="rate"):
            poisson_arrival_times(4, rate=rate)


class TestSlackDeadlines:
    def test_plain_slack(self):
        assert slack_deadlines([0.0, 0.5, 1.25], slack=0.1) == \
            [0.1, 0.6, 1.35]

    def test_jitter_bounds_and_determinism(self):
        arrivals = poisson_arrival_times(24, rate=100.0, seed=3)
        a = slack_deadlines(arrivals, slack=0.2, jitter=0.05, seed=8)
        b = slack_deadlines(arrivals, slack=0.2, jitter=0.05, seed=8)
        assert a == b
        for arrival, deadline in zip(arrivals, a):
            assert arrival + 0.2 <= deadline < arrival + 0.25

    def test_empty_arrivals(self):
        assert slack_deadlines([], slack=1.0) == []

    def test_nonpositive_slack_rejected(self):
        with pytest.raises(ValueError, match="slack"):
            slack_deadlines([0.0], slack=0.0)

    def test_negative_jitter_rejected(self):
        with pytest.raises(ValueError, match="jitter"):
            slack_deadlines([0.0], slack=1.0, jitter=-0.1)


def _assert_identical(result, reference):
    assert result.matches(reference)
    for got, want in zip(result.results, reference.results):
        np.testing.assert_array_equal(got.outputs(), want.outputs())
        np.testing.assert_array_equal(got.key_mask(), want.key_mask())


class TestSchedulerBackends:
    def test_serial(self, spec, workload, serial_result):
        results = ClipScheduler(spec, SchedulerConfig(backend="serial")).run(workload)
        for got, want in zip(results, serial_result.results):
            np.testing.assert_array_equal(got.outputs(), want.outputs())

    def test_threads_match_serial(self, spec, workload, serial_result):
        threaded = run_workload(
            spec, workload, scheduler=SchedulerConfig(workers=2, backend="thread")
        )
        _assert_identical(threaded, serial_result)
        assert threaded.path == "thread"
        assert threaded.workers == 2

    def test_processes_match_serial(self, spec, workload, serial_result):
        pooled = run_workload(
            spec, workload, scheduler=SchedulerConfig(workers=2, backend="process")
        )
        _assert_identical(pooled, serial_result)
        assert pooled.path == "process"

    def test_process_backend_mid_run_completion(self, spec):
        """Ragged-length clips finish at different times mid-run; workers
        are recycled onto the remaining clips and per-clip results stay
        identical and input-ordered."""
        mixed = (
            synthetic_workload(2, num_frames=8, base_seed=2)
            + synthetic_workload(3, num_frames=3, base_seed=21)
            + synthetic_workload(2, num_frames=5, base_seed=33)
        )
        serial = run_workload(spec, mixed, batch=False)
        pooled = run_workload(
            spec, mixed, scheduler=SchedulerConfig(workers=2, backend="process")
        )
        assert [len(r) for r in pooled.results] == [8, 8, 3, 3, 3, 5, 5]
        _assert_identical(pooled, serial)

    def test_process_backend_more_workers_than_clips(self, spec, workload,
                                                     serial_result):
        """A pool wider than the workload leaves workers idle, not wrong."""
        pooled = run_workload(
            spec,
            workload,
            scheduler=SchedulerConfig(workers=len(workload) + 2,
                                      backend="process"),
        )
        _assert_identical(pooled, serial_result)

    def test_auto_resolution(self):
        assert SchedulerConfig(workers=0).resolve(8) == "serial"
        assert SchedulerConfig(workers=4, backend="thread").resolve(8) == "thread"
        assert SchedulerConfig(workers=4).resolve(1) == "serial"

    def test_explicit_backend_with_no_workers_runs_serially(
        self, spec, workload, serial_result
    ):
        """An explicit pool backend with workers <= 1 is the serial path,
        not a zero-worker pool crash."""
        config = SchedulerConfig(backend="thread")
        assert config.resolve(len(workload)) == "serial"
        results = ClipScheduler(spec, config).run(workload)
        for got, want in zip(results, serial_result.results):
            np.testing.assert_array_equal(got.outputs(), want.outputs())

    def test_bad_backend_rejected(self):
        with pytest.raises(ValueError):
            SchedulerConfig(backend="quantum")

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError):
            SchedulerConfig(workers=-1)


class TestBatchedPipeline:
    def test_lockstep_matches_serial(self, spec, workload, serial_result):
        """Default lockstep (batched RFBME + batched CNN) is bit-identical
        to the serial loop: outputs, key decisions, op counts."""
        lockstep = BatchedPipeline(spec).run_workload(workload)
        _assert_identical(lockstep, serial_result)
        assert lockstep.path == "lockstep"

    def test_lockstep_without_cnn_batching_matches_serial(
        self, spec, workload, serial_result
    ):
        """The PR 1 execution shape (batched RFBME, per-clip CNN) still
        produces identical results."""
        lockstep = BatchedPipeline(spec, cnn_batching=False).run_workload(workload)
        _assert_identical(lockstep, serial_result)

    def test_legacy_engine_and_pr1_profile_match(self, workload, serial_result):
        """The legacy CNN engine + pr1 RFBME host profile — the runtime
        benchmark's baseline — reproduces the same results bit for bit."""
        legacy = PipelineSpec(
            network=NETWORK, cnn_engine="legacy", rfbme_profile="pr1"
        )
        for batch in (False, True):
            result = run_workload(legacy, workload, batch=batch)
            _assert_identical(result, serial_result)

    def test_memoize_network_lockstep_matches_serial(self):
        """Cross-clip CNN batching with memoization (classification
        networks) is bit-identical too."""
        spec = PipelineSpec(network="mini_alexnet")
        spec.warm()
        clips = synthetic_workload(4, num_frames=6, base_seed=3)
        serial = run_workload(spec, clips, batch=False)
        lockstep = run_workload(spec, clips, batch=True)
        _assert_identical(lockstep, serial)

    def test_float32_same_decisions_bounded_outputs(self, spec, workload):
        """float32 mode: RFBME stays float64, so key decisions and op
        counts are identical; CNN outputs drift within float32 bounds."""
        f32 = PipelineSpec(network=NETWORK, dtype="float32")
        want = run_workload(spec, workload, batch=True)
        got = run_workload(f32, workload, batch=True)
        np.testing.assert_array_equal(got.key_mask(), want.key_mask())
        assert got.total_estimation_ops == want.total_estimation_ops
        np.testing.assert_allclose(
            got.outputs(), want.outputs(), rtol=2e-4, atol=2e-4
        )

    def test_float32_batched_matches_float32_serial(self, workload):
        """Within float32 mode, lockstep batching is still bit-identical
        to the float32 serial loop."""
        f32 = PipelineSpec(network=NETWORK, dtype="float32")
        serial = run_workload(f32, workload, batch=False)
        lockstep = run_workload(f32, workload, batch=True)
        _assert_identical(lockstep, serial)

    def test_cnn_batching_requires_planned_engine(self):
        legacy = PipelineSpec(network=NETWORK, cnn_engine="legacy")
        with pytest.raises(ValueError):
            BatchedPipeline(legacy, cnn_batching=True)

    def test_float32_requires_planned_engine(self):
        with pytest.raises(ValueError):
            PipelineSpec(network=NETWORK, cnn_engine="legacy", dtype="float32")

    def test_bad_profile_rejected(self):
        with pytest.raises(ValueError):
            PipelineSpec(network=NETWORK, rfbme_profile="pr2")

    def test_ragged_clip_lengths(self, spec, serial_result):
        """Clips of different lengths run in lockstep without padding."""
        clips = synthetic_workload(2, num_frames=5, base_seed=1) + synthetic_workload(
            2, num_frames=3, base_seed=9
        )
        lockstep = BatchedPipeline(spec).run_workload(clips)
        serial = run_workload(spec, clips, batch=False)
        assert [len(r) for r in lockstep.results] == [5, 5, 3, 3]
        _assert_identical(lockstep, serial)

    def test_loop_backend_matches_default(self, workload, serial_result):
        """The seed loop implementation and the vectorized default agree
        end to end: outputs, key decisions, and op counts."""
        loop_spec = PipelineSpec(network=NETWORK, rfbme_backend="loop")
        loop_result = run_workload(loop_spec, workload, batch=False)
        _assert_identical(loop_result, serial_result)


class TestPipelinedLockstep:
    """pipeline_depth=2: step t+1's RFBME/decide overlap step t's CNN
    stages on a double-buffered engine — bit-identical at any depth."""

    def test_pipelined_matches_serial(self, spec, workload, serial_result):
        piped = BatchedPipeline(spec, pipeline_depth=2).run_workload(workload)
        _assert_identical(piped, serial_result)

    def test_spec_depth_reaches_lockstep(self, workload, serial_result):
        """run_workload picks the depth up from the spec (the CLI path)."""
        piped_spec = PipelineSpec(network=NETWORK, pipeline_depth=2)
        piped = run_workload(piped_spec, workload, batch=True)
        _assert_identical(piped, serial_result)

    def test_pipelined_ragged_lengths(self, spec):
        """Clips departing the lockstep mid-stream shrink the in-flight
        batches; the pipeline keeps every remaining step overlapped."""
        clips = synthetic_workload(2, num_frames=7, base_seed=2) + \
            synthetic_workload(2, num_frames=3, base_seed=13)
        serial = run_workload(spec, clips, batch=False)
        piped = BatchedPipeline(spec, pipeline_depth=2).run_workload(clips)
        _assert_identical(piped, serial)

    def test_pipelined_memoize_network(self):
        memo = PipelineSpec(network="mini_alexnet", pipeline_depth=2)
        memo.warm()
        clips = synthetic_workload(3, num_frames=5, base_seed=6)
        serial = run_workload(memo, clips, batch=False)
        piped = run_workload(memo, clips, batch=True)
        _assert_identical(piped, serial)

    def test_pipelined_legacy_engine(self, workload, serial_result):
        """The legacy graph's overlap window is just `record`, but the
        executor path must stay bit-identical there too."""
        legacy = PipelineSpec(
            network=NETWORK, cnn_engine="legacy", pipeline_depth=2
        )
        piped = run_workload(legacy, workload, batch=True)
        _assert_identical(piped, serial_result)

    def test_depth_beyond_two_behaves_as_two(self, spec, workload,
                                             serial_result):
        piped = BatchedPipeline(spec, pipeline_depth=4).run_workload(workload)
        _assert_identical(piped, serial_result)

    def test_bad_depth_rejected(self, spec):
        with pytest.raises(ValueError, match="pipeline_depth"):
            BatchedPipeline(spec, pipeline_depth=0)
        with pytest.raises(ValueError, match="pipeline_depth"):
            PipelineSpec(network=NETWORK, pipeline_depth=0)


class TestWorkloadResult:
    def test_throughput_stats(self, serial_result, workload):
        assert serial_result.num_clips == len(workload)
        assert serial_result.total_frames == sum(len(c) for c in workload)
        assert serial_result.frames_per_second > 0
        assert 0.0 < serial_result.key_fraction <= 1.0
        assert serial_result.total_estimation_ops > 0

    def test_outputs_shape(self, serial_result):
        outputs = serial_result.outputs()
        assert outputs.shape[0] == serial_result.total_frames
        assert serial_result.key_mask().shape == (serial_result.total_frames,)

    def test_summary_rows(self, serial_result):
        rows = dict((row[0], row[1]) for row in serial_result.summary_rows())
        assert rows["clips"] == serial_result.num_clips
        assert rows["frames"] == serial_result.total_frames

    def test_empty_workload_accessors(self):
        from repro.runtime import WorkloadResult

        empty = WorkloadResult(results=[], wall_seconds=0.0, path="serial")
        assert empty.total_frames == 0
        assert empty.outputs().shape[0] == 0
        assert empty.key_mask().shape == (0,)
        assert empty.matches(empty)

    def test_matches_detects_difference(self, spec, workload, serial_result):
        other = run_workload(
            PipelineSpec(network=NETWORK, policy="always"), workload, batch=False
        )
        assert not serial_result.matches(other)
