"""Cross-lane prefix service tests: coalescing, content cache, soundness.

The service may only ever change *when* prefix work runs (fused across
lanes/shards) or *whether* it runs (content-addressed cache hits) —
never a single output bit.  These tests pin the accounting (fused
batches, hits/misses/evictions), the invalidation contract
(``load_state_dict`` bumps the weight version), and bit-identity against
the serial pipeline across the in-process, sharded, and speculative
serving shapes.
"""

import itertools

import numpy as np
import pytest

from repro.core.stages import LaneSlot, LaneState, StepBatch
from repro.runtime import (
    ClipRequest,
    PipelineSpec,
    PrefixService,
    ServerConfig,
    ServingRuntime,
    poisson_arrival_times,
    run_workload,
    static_stretch_workload,
    synthetic_workload,
)
from repro.runtime.prefix_service import _PrefixCache
from repro.video import frozen_scene, generate_clip

NETWORK = "mini_fasterm"


class FakeClock:
    """Deterministic clock: each reading advances one tick (no sleeps)."""

    def __init__(self, tick: float = 0.001):
        self.now = 0.0
        self.tick = tick

    def __call__(self) -> float:
        self.now += self.tick
        return self.now


@pytest.fixture(scope="module")
def spec():
    spec = PipelineSpec(network=NETWORK)
    spec.warm()
    return spec


@pytest.fixture(scope="module")
def always_spec():
    """Every frame a key frame: the maximal-coincidence regime."""
    spec = PipelineSpec(network=NETWORK, policy="always")
    spec.warm()
    return spec


def _requests(clips, arrivals=None, lanes=None):
    arrivals = arrivals if arrivals is not None else itertools.repeat(0.0)
    lanes = lanes if lanes is not None else itertools.repeat(None)
    return [
        ClipRequest(request_id=i, clip=clip, arrival_time=t, lane=lane)
        for i, (clip, t, lane) in enumerate(zip(clips, arrivals, lanes))
    ]


def _assert_identical(report, reference):
    got = report.workload_result()
    assert got.matches(reference)
    for served, want in zip(got.results, reference.results):
        np.testing.assert_array_equal(served.outputs(), want.outputs())
        np.testing.assert_array_equal(served.key_mask(), want.key_mask())


def _single_slot_batch(spec, network, frame):
    """A one-lane StepBatch around ``frame`` for direct-protocol calls."""
    executor = spec.build_executor(network)
    state = LaneState(
        slots=[LaneSlot(executor=executor, policy=spec.build_policy())]
    )
    plan = network.inference_plan(max_batch=1, dtype=spec.dtype)
    return StepBatch(state=state, positions=[0], frames=[frame], plan=plan)


# ---------------------------------------------------------------------- #
# cache unit behaviour
# ---------------------------------------------------------------------- #
class TestPrefixCache:
    def test_lru_eviction_order(self):
        row = np.ones(16)  # 128 bytes
        cache = _PrefixCache(capacity_bytes=3 * row.nbytes)
        for name in ("a", "b", "c"):
            assert cache.put((name,), row) == 0
        assert cache.get(("a",)) is not None  # refresh: "b" is now LRU
        assert cache.put(("d",), row) == 1
        assert cache.get(("b",)) is None
        assert all(cache.get((k,)) is not None for k in ("a", "c", "d"))

    def test_oversize_entry_never_wipes_cache(self):
        small = np.ones(8)
        cache = _PrefixCache(capacity_bytes=4 * small.nbytes)
        cache.put(("keep",), small)
        assert cache.put(("huge",), np.ones(1024)) == 0
        assert cache.get(("huge",)) is None
        assert cache.get(("keep",)) is not None

    def test_reinsert_same_key_replaces_without_leaking_bytes(self):
        row = np.ones(16)
        cache = _PrefixCache(capacity_bytes=10 * row.nbytes)
        for _ in range(5):
            cache.put(("k",), row)
        assert len(cache) == 1
        assert cache.nbytes == row.nbytes


class TestDirectProtocol:
    def test_hit_returns_identical_bits(self, spec):
        network = spec.shared_network()
        frame = generate_clip(frozen_scene(), seed=0, num_frames=1).frames[0]
        service = PrefixService(coalesce=False, cache_mb=64.0)
        first = service.run_prefix(_single_slot_batch(spec, network, frame), [0])
        assert (service.stats.hits, service.stats.misses) == (0, 1)
        again = service.run_prefix(_single_slot_batch(spec, network, frame), [0])
        assert (service.stats.hits, service.stats.misses) == (1, 1)
        np.testing.assert_array_equal(first, again)
        assert service.stats.saved_macs == network.prefix_macs(
            spec.build_executor(network).target
        )

    def test_cache_off_counts_nothing(self, spec):
        network = spec.shared_network()
        frame = generate_clip(frozen_scene(), seed=0, num_frames=1).frames[0]
        service = PrefixService(coalesce=False, cache_mb=0.0)
        service.run_prefix(_single_slot_batch(spec, network, frame), [0])
        service.run_prefix(_single_slot_batch(spec, network, frame), [0])
        assert (service.stats.hits, service.stats.misses) == (0, 0)

    def test_load_state_dict_invalidates(self):
        """A live weight swap must miss the cache, not serve stale bits."""
        from repro.nn.train import get_trained_network

        spec = PipelineSpec(network=NETWORK)
        spec.warm()
        network = get_trained_network(NETWORK, fresh_copy=True)
        frame = generate_clip(frozen_scene(), seed=1, num_frames=1).frames[0]
        service = PrefixService(coalesce=False, cache_mb=64.0)
        before = service.run_prefix(
            _single_slot_batch(spec, network, frame), [0]
        ).copy()

        version = network.weight_version
        state = network.state_dict()
        perturbed = {k: v * 1.5 for k, v in state.items()}
        network.load_state_dict(perturbed)
        assert network.weight_version > version

        after = service.run_prefix(
            _single_slot_batch(spec, network, frame), [0]
        )
        # Same pixels, new weights: the lookup was a miss, and the
        # returned activation reflects the swapped weights.
        assert (service.stats.hits, service.stats.misses) == (0, 2)
        assert not np.array_equal(before, after)


# ---------------------------------------------------------------------- #
# serving integration
# ---------------------------------------------------------------------- #
class TestServingCache:
    def test_repeated_scene_hits_and_identity(self, always_spec):
        clips = static_stretch_workload(4, num_frames=8, stretch=4,
                                        base_seed=3)
        serial = run_workload(always_spec, clips, batch=False)
        report = ServingRuntime(
            always_spec,
            ServerConfig(max_batch=2, prefix_cache_mb=64.0),
        ).serve(_requests(clips))
        _assert_identical(report, serial)
        # stretch=4 over 8 frames: 2 distinct frames per clip, 6 repeats.
        assert report.prefix_cache_misses == 2 * len(clips)
        assert report.prefix_cache_hits == 6 * len(clips)
        assert report.prefix_hit_rate == pytest.approx(0.75)
        assert report.prefix_saved_macs > 0
        labels = {row[0] for row in report.summary_rows()}
        assert "prefix cache hits/misses" in labels
        assert "prefix hit rate" in labels

    def test_eviction_under_tiny_budget(self, always_spec):
        clips = synthetic_workload(4, num_frames=6, base_seed=7)
        serial = run_workload(always_spec, clips, batch=False)
        network = always_spec.shared_network()
        target = always_spec.build_executor(network).target
        entry_bytes = (
            int(np.prod(network.layer_output_shape(target))) * 8
        )
        # Room for ~2 entries: every distinct frame still fits (no
        # oversize skips), but the LRU must evict constantly.
        cache_mb = 2.5 * entry_bytes / (1024 * 1024)
        report = ServingRuntime(
            always_spec,
            ServerConfig(max_batch=2, prefix_cache_mb=cache_mb),
        ).serve(_requests(clips))
        _assert_identical(report, serial)
        assert report.prefix_cache_evictions > 0

    def test_lockstep_workload_cache(self, always_spec):
        clips = static_stretch_workload(3, num_frames=8, stretch=2,
                                        base_seed=5)
        serial = run_workload(always_spec, clips, batch=False)
        cached = run_workload(always_spec, clips, prefix_cache_mb=64.0)
        assert cached.matches(serial)
        assert cached.prefix_cache_hits == 4 * len(clips)
        assert cached.prefix_cache_misses == 4 * len(clips)

    def test_speculative_pipeline_with_cache(self, always_spec):
        """Rollbacks must not poison the cache: cnn_prefix only runs on
        committed steps, so a speculated-then-rolled-back head can never
        have written an entry.  Staggered arrivals force membership
        mismatches; every bit must still match serial."""
        spec = PipelineSpec(network=NETWORK, policy="static", interval=3,
                            pipeline_depth=2, speculate=True)
        spec.warm()
        clips = (static_stretch_workload(2, num_frames=8, stretch=4,
                                         base_seed=31)
                 + static_stretch_workload(3, num_frames=5, stretch=4,
                                           base_seed=47))
        arrivals = [0.0, 0.0, 0.006, 0.012, 0.018]
        serial = run_workload(spec, clips, batch=False)
        report = ServingRuntime(
            spec,
            ServerConfig(max_batch=3, clock=FakeClock(),
                         prefix_cache_mb=64.0),
        ).serve(_requests(clips, arrivals))
        _assert_identical(report, serial)
        assert report.speculated > 0
        assert report.rollbacks > 0


class TestCrossLaneCoalescing:
    def _two_lane_runtime(self, spec, config=None, **kwargs):
        return ServingRuntime({"cam0": spec, "cam1": spec},
                              config or ServerConfig(**kwargs))

    def _two_lane_requests(self, clips, arrivals=None):
        lanes = ["cam0" if i % 2 == 0 else "cam1"
                 for i in range(len(clips))]
        return _requests(clips, arrivals, lanes=lanes)

    def test_fused_batches_counted_and_identical(self, always_spec):
        clips = synthetic_workload(4, num_frames=6, base_seed=13)
        serial = run_workload(always_spec, clips, batch=False)
        report = self._two_lane_runtime(
            always_spec, max_batch=2, prefix_coalesce=True
        ).serve(self._two_lane_requests(clips))
        _assert_identical(report, serial)
        # Both lanes step every round with policy="always": every round
        # with both lanes occupied fuses.
        assert report.prefix_fused_batches > 0

    def test_coalesce_off_is_baseline(self, always_spec):
        clips = synthetic_workload(4, num_frames=6, base_seed=13)
        serial = run_workload(always_spec, clips, batch=False)
        report = self._two_lane_runtime(
            always_spec, max_batch=2, prefix_coalesce=False
        ).serve(self._two_lane_requests(clips))
        _assert_identical(report, serial)
        assert report.prefix_fused_batches == 0

    def test_ragged_staggered_coalesced_identity(self, spec):
        """Lanes at different occupancy/cursors, arrivals staggered: the
        fused path must re-create every lane's exact per-lane rows."""
        mixed = (
            synthetic_workload(2, num_frames=9, base_seed=1)
            + synthetic_workload(3, num_frames=3, base_seed=5)
            + synthetic_workload(3, num_frames=6, base_seed=8)
        )
        serial = run_workload(spec, mixed, batch=False)
        arrivals = poisson_arrival_times(len(mixed), rate=2000.0, seed=2)
        report = self._two_lane_runtime(
            spec,
            ServerConfig(max_batch=2, clock=FakeClock(),
                         prefix_coalesce=True, prefix_cache_mb=64.0),
        ).serve(self._two_lane_requests(mixed, arrivals))
        _assert_identical(report, serial)

    def test_sharded_des_cohort_fuses_and_shares_cache(self, always_spec):
        """Inline DES shards tie on the deterministic clock and step as
        one fused round; the shared service's cache spans shards."""
        clips = static_stretch_workload(4, num_frames=8, stretch=4,
                                        base_seed=3)
        serial = run_workload(always_spec, clips, batch=False)
        report = self._two_lane_runtime(
            always_spec,
            ServerConfig(max_batch=2, serve_workers=2, admission="shared",
                         shard_backend="serial", clock=FakeClock(),
                         prefix_coalesce=True, prefix_cache_mb=64.0),
        ).serve(self._two_lane_requests(clips))
        _assert_identical(report, serial)
        assert report.prefix_fused_batches > 0
        # Clips repeat frames across clips of one scenario stream:
        # cross-shard sharing shows as hits beyond any one shard's view.
        assert report.prefix_cache_hits == 6 * len(clips)

    def test_static_sharded_coalesced_identity(self, always_spec):
        """Static inline sharding: per-shard services, still identical."""
        clips = synthetic_workload(6, num_frames=5, base_seed=21)
        serial = run_workload(always_spec, clips, batch=False)
        report = ServingRuntime(
            always_spec,
            ServerConfig(max_batch=2, serve_workers=2,
                         shard_backend="serial", prefix_cache_mb=64.0),
        ).serve(_requests(clips))
        _assert_identical(report, serial)


# ---------------------------------------------------------------------- #
# duplicate-frame traffic generator
# ---------------------------------------------------------------------- #
class TestStaticStretchWorkload:
    def test_deterministic_and_stretched(self):
        a = static_stretch_workload(3, num_frames=10, stretch=4, base_seed=6)
        b = static_stretch_workload(3, num_frames=10, stretch=4, base_seed=6)
        for clip_a, clip_b in zip(a, b):
            np.testing.assert_array_equal(clip_a.frames, clip_b.frames)
        for clip in a:
            assert len(clip) == 10
            assert len(clip.annotations) == 10
            # Frames repeat in runs of `stretch` (last run truncated).
            for t in range(10):
                np.testing.assert_array_equal(
                    clip.frames[t], clip.frames[(t // 4) * 4]
                )

    def test_stretch_one_is_plain_workload(self):
        plain = synthetic_workload(2, num_frames=5, base_seed=4)
        stretched = static_stretch_workload(2, num_frames=5, stretch=1,
                                            base_seed=4)
        for a, b in zip(plain, stretched):
            np.testing.assert_array_equal(a.frames, b.frames)

    def test_validation(self):
        with pytest.raises(ValueError):
            static_stretch_workload(2, num_frames=0)
        with pytest.raises(ValueError):
            static_stretch_workload(2, stretch=0)

    def test_frozen_scene_is_bit_frozen(self):
        clip = generate_clip(frozen_scene(), seed=5, num_frames=6)
        for t in range(1, 6):
            np.testing.assert_array_equal(clip.frames[0], clip.frames[t])
