"""Tests for optimisers, training loops, quantization helpers, and the
model zoo."""

import numpy as np
import pytest

from repro.hardware.fixed_point import QFormat
from repro.nn import (
    Adam,
    Conv2d,
    Flatten,
    Linear,
    Network,
    ReLU,
    SGD,
    classification_accuracy,
    train_classifier,
    train_detector,
)
from repro.nn.models import DETECTION_OUTPUTS
from repro.nn.quantize import choose_format, quantize_activation
from repro.nn.train import detection_loss, get_trained_network
from repro.video import NUM_CLASSES


def make_toy_data(rng, n=64):
    """Linearly separable 2-class image data."""
    frames = rng.normal(size=(n, 1, 8, 8))
    labels = (frames.mean(axis=(1, 2, 3)) > 0).astype(np.int64)
    frames[labels == 1] += 0.5
    return frames, labels


def toy_net(outputs=2):
    rng = np.random.default_rng(0)
    return Network(
        "toy",
        [
            Conv2d("c1", 1, 4, kernel=3, pad=1, rng=rng),
            ReLU("r1"),
            Flatten("f"),
            Linear("fc", 4 * 8 * 8, outputs, rng=rng),
        ],
        (1, 8, 8),
    )


class TestOptimizers:
    @pytest.mark.parametrize("opt_cls", [SGD, Adam])
    def test_reduces_loss(self, rng, opt_cls):
        frames, labels = make_toy_data(rng)
        net = toy_net()
        result = train_classifier(net, frames, labels, epochs=5, lr=1e-2)
        assert result.losses[-1] < result.losses[0]

    def test_sgd_step_moves_params(self, rng):
        net = toy_net()
        frames, labels = make_toy_data(rng, n=8)
        opt = SGD(net.layers, lr=0.1)
        before = net.state_dict()
        from repro.nn import functional as F

        logits = net.forward(frames, train=True)
        net.backward(F.cross_entropy_grad(logits, labels))
        opt.step()
        after = net.state_dict()
        assert any(
            not np.array_equal(before[k], after[k]) for k in before
        )

    def test_weight_decay_shrinks_weights(self, rng):
        net_a, net_b = toy_net(), toy_net()
        frames, labels = make_toy_data(rng, n=16)
        from repro.nn import functional as F

        for net, decay in ((net_a, 0.0), (net_b, 1.0)):
            opt = SGD(net.layers, lr=0.01, momentum=0.0, weight_decay=decay)
            logits = net.forward(frames, train=True)
            net.backward(F.cross_entropy_grad(logits, labels))
            opt.step()
        def norm(net):
            return sum(float((p**2).sum()) for _, _, p in net.parameters())

        assert norm(net_b) < norm(net_a)

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.0)
        with pytest.raises(ValueError):
            Adam([], lr=-1.0)


class TestTraining:
    def test_classifier_learns_toy_task(self, rng):
        frames, labels = make_toy_data(rng, n=128)
        net = toy_net()
        result = train_classifier(net, frames, labels, epochs=8, lr=5e-3)
        assert result.final_metric > 0.9

    def test_detector_loss_and_grad_shapes(self, rng):
        output = rng.normal(size=(4, DETECTION_OUTPUTS))
        labels = rng.integers(0, NUM_CLASSES, size=4)
        boxes = rng.uniform(0.2, 0.8, size=(4, 4))
        loss, grad = detection_loss(output, labels, boxes)
        assert loss > 0
        assert grad.shape == output.shape

    def test_detector_training_reduces_loss(self, rng):
        frames = rng.normal(size=(48, 1, 8, 8))
        labels = rng.integers(0, NUM_CLASSES, size=48)
        boxes = rng.uniform(0.2, 0.8, size=(48, 4))
        net = toy_net(outputs=DETECTION_OUTPUTS)
        result = train_detector(net, frames, labels, boxes, epochs=6, lr=3e-3)
        assert result.losses[-1] < result.losses[0]

    def test_training_deterministic(self, rng):
        frames, labels = make_toy_data(rng, n=32)
        nets = [toy_net(), toy_net()]
        for net in nets:
            train_classifier(net, frames, labels, epochs=2, seed=7)
        a, b = nets[0].state_dict(), nets[1].state_dict()
        for key in a:
            np.testing.assert_array_equal(a[key], b[key])


class TestModelZoo:
    def test_unknown_network(self):
        with pytest.raises(KeyError):
            get_trained_network("resnet50")

    def test_fresh_copy_isolated(self):
        a = get_trained_network("mini_alexnet")
        b = get_trained_network("mini_alexnet")
        a.layers[0].params["weight"][...] = 0.0
        assert b.layers[0].params["weight"].any()

    def test_shared_copy_is_cached_instance(self):
        a = get_trained_network("mini_alexnet", fresh_copy=False)
        b = get_trained_network("mini_alexnet", fresh_copy=False)
        assert a is b

    def test_trained_alexnet_beats_chance(self, trained_alexnet, tiny_test_set):
        from repro.video import frames_and_labels

        frames, labels, _ = frames_and_labels(tiny_test_set)
        acc = classification_accuracy(trained_alexnet, frames, labels)
        assert acc > 2.0 / NUM_CLASSES  # well above the 1/8 chance level

    def test_trained_detector_localises(self, trained_fasterm, tiny_test_set):
        from repro.nn.models import split_detection_output
        from repro.video import frames_and_labels

        frames, labels, boxes = frames_and_labels(tiny_test_set)
        out = trained_fasterm.forward(frames)
        _, pred_boxes = split_detection_output(out)
        err_px = np.abs(pred_boxes - boxes).mean() * 64
        assert err_px < 8.0  # object centres within a fraction of the frame


class TestQuantize:
    def test_choose_format_avoids_saturation(self, rng):
        values = rng.uniform(-30, 30, size=100)
        fmt = choose_format(values, total_bits=16)
        assert fmt.max_value >= np.abs(values).max()

    def test_choose_format_spends_bits_on_fraction(self):
        fmt = choose_format(np.array([0.1, -0.4]), total_bits=16)
        assert fmt.int_bits == 0
        assert fmt.frac_bits == 15

    def test_quantize_activation_stats(self, rng):
        values = rng.uniform(-1, 1, size=256)
        fmt = choose_format(values)
        _, stats = quantize_activation(values, fmt)
        assert stats.max_abs_error <= fmt.resolution / 2 + 1e-12
        assert stats.saturated_fraction == 0.0

    def test_saturation_reported(self):
        fmt = QFormat(1, 6)
        _, stats = quantize_activation(np.array([10.0, 0.5]), fmt)
        assert stats.saturated_fraction == pytest.approx(0.5)

    def test_choose_format_validation(self):
        with pytest.raises(ValueError):
            choose_format(np.array([1.0]), total_bits=1)

    def test_quantized_network_outputs_close(self, trained_alexnet, tiny_test_set):
        """16-bit activation quantization barely moves the logits."""
        from repro.video import frames_and_labels

        frames, _, _ = frames_and_labels(tiny_test_set)
        x = frames[:4]
        exact = trained_alexnet.forward(x)
        act = trained_alexnet.forward_prefix(
            x, trained_alexnet.last_spatial_layer()
        )
        fmt = choose_format(act)
        quantized, _ = quantize_activation(act, fmt)
        approx = trained_alexnet.forward_suffix(
            quantized, trained_alexnet.last_spatial_layer()
        )
        assert np.abs(exact - approx).max() < 0.05
