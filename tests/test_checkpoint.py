"""Checkpoint/rollback contract tests (the Checkpointable protocol).

Speculative pipelining is only sound if ``checkpoint() → mutate* →
rollback()`` is an exact round trip on every resource the speculated
head writes.  These tests pin that contract three ways: property-style
round trips on the key-frame policies (randomized decide streams),
resource-level round trips on a real mid-stream lane batch, and a
mutation-style self-check that the churn harness *catches* a missed
rollback rather than silently passing.
"""

import numpy as np
import pytest

from repro.core import (
    AlwaysKeyPolicy,
    MatchErrorPolicy,
    MotionMagnitudePolicy,
    NeverKeyPolicy,
    StaticPolicy,
)
from repro.core.keyframe import KeyFramePolicy
from repro.core.stages import (
    CHECKPOINT_RESOURCES,
    CURSOR_STATE,
    ENGINE_SCRATCH,
    KEY_STATE,
    POLICY_STATE,
    StepBatch,
    checkpoint_resource,
    fingerprint_resource,
    restore_resource,
)
from repro.runtime import (
    Checkpointable,
    ClipRequest,
    PipelineSpec,
    ServerConfig,
    ServingRuntime,
    StageExecutor,
    frame_lifecycle_graph,
    run_workload,
    synthetic_workload,
)
from repro.runtime.serving import LaneWorker

NETWORK = "mini_fasterm"

POLICY_FACTORIES = {
    "static": lambda: StaticPolicy(3),
    "match_error": lambda: MatchErrorPolicy(2.0, max_gap=4),
    "motion": lambda: MotionMagnitudePolicy(1.5),
    "always": AlwaysKeyPolicy,
    "never": NeverKeyPolicy,
}


class _FakeField:
    def __init__(self, magnitude):
        self._magnitude = magnitude

    def total_magnitude(self):
        return self._magnitude


class _FakeEstimation:
    """Just the two metrics the adaptive policies read."""

    def __init__(self, error, magnitude):
        self.total_match_error = error
        self.field = _FakeField(magnitude)


def _decide_stream(rng, length):
    """A deterministic stream of (frame_index, estimation) pairs."""
    stream = [(0, None)]
    for i in range(1, length):
        stream.append(
            (i, _FakeEstimation(float(rng.uniform(0, 4)),
                                float(rng.uniform(0, 3))))
        )
    return stream


class TestPolicyRoundTrip:
    """checkpoint → decide* → rollback is exact on every policy."""

    @pytest.mark.parametrize("name", sorted(POLICY_FACTORIES))
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_rollback_restores_state_and_replays(self, name, seed):
        policy = POLICY_FACTORIES[name]()
        rng = np.random.default_rng(seed)
        stream = _decide_stream(rng, 12)
        cut = int(rng.integers(1, len(stream) - 1))

        for frame, estimation in stream[:cut]:
            policy.decide(frame, estimation)
        snapshot = policy.checkpoint()
        state_at_cut = dict(vars(policy))

        first_pass = [
            policy.decide(frame, estimation)
            for frame, estimation in stream[cut:]
        ]
        policy.rollback(snapshot)
        assert vars(policy) == state_at_cut

        # Replay determinism: the identical tail stream must reproduce
        # the identical decisions after rollback.
        replay = [
            policy.decide(frame, estimation)
            for frame, estimation in stream[cut:]
        ]
        assert replay == first_pass

    def test_snapshot_is_isolated_and_reusable(self):
        policy = StaticPolicy(4)
        policy.decide(0, None)
        policy.decide(1, _FakeEstimation(0.0, 0.0))
        snapshot = policy.checkpoint()
        want = dict(vars(policy))

        for _ in range(2):  # one snapshot, two rollbacks
            for i in range(2, 7):
                policy.decide(i, _FakeEstimation(0.0, 0.0))
            assert vars(policy) != want  # mutation really happened
            policy.rollback(snapshot)
            assert vars(policy) == want

    def test_nested_and_aliased_containers_round_trip(self):
        """Deep-copy semantics: nested arrays restore by value and
        intra-snapshot aliasing is preserved by the copy memo."""

        class HistoryPolicy(StaticPolicy):
            def __init__(self):
                super().__init__(2)
                self.history = np.zeros(4)
                # two attributes deliberately alias one array
                self.views = {"latest": self.history}

            def _decide(self, estimation):
                self.history[self._frames_since_key % 4] += 1.0
                return super()._decide(estimation)

        policy = HistoryPolicy()
        policy.decide(0, None)
        snapshot = policy.checkpoint()
        baseline = policy.history.copy()

        for i in range(1, 6):
            policy.decide(i, _FakeEstimation(0.0, 0.0))
        assert not np.array_equal(policy.history, baseline)

        policy.rollback(snapshot)
        np.testing.assert_array_equal(policy.history, baseline)
        assert policy.history is policy.views["latest"]  # aliasing kept
        # and the snapshot itself never saw the in-place mutations
        policy.decide(1, _FakeEstimation(0.0, 0.0))
        policy.rollback(snapshot)
        np.testing.assert_array_equal(policy.history, baseline)

    def test_policies_satisfy_checkpointable_protocol(self):
        for factory in POLICY_FACTORIES.values():
            assert isinstance(factory(), Checkpointable)
        assert isinstance(KeyFramePolicy, type)
        assert not isinstance(object(), Checkpointable)


@pytest.fixture(scope="module")
def spec():
    spec = PipelineSpec(network=NETWORK, policy="static", interval=2,
                        pipeline_depth=2)
    spec.warm()
    return spec


@pytest.fixture(scope="module")
def clips():
    return synthetic_workload(3, num_frames=6, base_seed=13)


def _mid_stream_worker(spec, clips):
    worker = LaneWorker("default", spec, capacity=len(clips))
    for i, clip in enumerate(clips):
        worker.admit(i, ClipRequest(request_id=i, clip=clip), now=0.0)
        worker.step()
    return worker


class TestResourceRoundTrip:
    """checkpoint_resource/restore_resource on a real lane batch."""

    def test_policy_and_cursor_state_round_trip(self, spec, clips):
        worker = _mid_stream_worker(spec, clips)
        batch = StepBatch(
            state=worker.state,
            positions=worker.state.occupied(),
            frames=[clips[i].frames[worker.state.slots[i].cursor]
                    for i in worker.state.occupied()],
        )
        snapshots = {
            resource: checkpoint_resource(batch, resource)
            for resource in CHECKPOINT_RESOURCES
        }
        before = {
            resource: fingerprint_resource(batch, resource)
            for resource in CHECKPOINT_RESOURCES
        }

        # Mutate both resources the way a speculated head would (and
        # more): advance cursors and run policy decisions.
        for k in range(len(batch)):
            batch.slot(k).cursor += k + 1
            batch.slot(k).policy.decide(1, _FakeEstimation(9.0, 9.0))
        for resource in CHECKPOINT_RESOURCES:
            assert fingerprint_resource(batch, resource) != before[resource]

        for resource in CHECKPOINT_RESOURCES:
            restore_resource(batch, resource, snapshots[resource])
        for resource in CHECKPOINT_RESOURCES:
            assert fingerprint_resource(batch, resource) == before[resource]

    def test_uncheckpointable_resources_raise(self, spec, clips):
        worker = _mid_stream_worker(spec, clips)
        batch = StepBatch(state=worker.state, positions=(), frames=[])
        for resource in (KEY_STATE, ENGINE_SCRATCH):
            with pytest.raises(ValueError):
                checkpoint_resource(batch, resource)
            with pytest.raises(ValueError):
                restore_resource(batch, resource, object())
        # None snapshots (resource not captured) restore as a no-op.
        restore_resource(batch, POLICY_STATE, None)
        restore_resource(batch, CURSOR_STATE, None)


class TestExecutorSpeculationGuards:
    def test_legacy_graph_is_speculation_unsafe(self):
        executor = StageExecutor(
            frame_lifecycle_graph(planned=False), pipeline_depth=2
        )
        assert not executor.speculation_safe
        # the planned graph's head (rfbme + decide) is safe
        assert StageExecutor(
            frame_lifecycle_graph(planned=True), pipeline_depth=2
        ).speculation_safe

    def test_speculating_on_unsafe_graph_raises(self, clips):
        legacy = PipelineSpec(network=NETWORK, cnn_engine="legacy",
                              pipeline_depth=2)
        worker = LaneWorker("default", legacy, capacity=1)
        worker.admit(0, ClipRequest(request_id=0, clip=clips[0]), now=0.0)
        batch = worker._build_batch(worker.state.occupied())
        from repro.runtime.stage_graph import PipelineContractError

        with pytest.raises(PipelineContractError, match="cannot speculate"):
            worker.executor.step(batch, next_batch=batch, speculative=True)

    def test_close_rolls_back_abandoned_speculation(self, spec, clips):
        """A speculative head in flight when the executor closes must be
        rolled back (reason 'abandoned'), leaving launch-time state."""
        # Sequential twin: its post-step-1 policy state is exactly what
        # the speculative worker checkpointed at launch (the speculated
        # step-2 decide runs on a worker thread, so the twin — not a
        # racy read of live state — is the deterministic reference).
        sequential = PipelineSpec(network=NETWORK, policy="static",
                                  interval=2, pipeline_depth=1)
        reference = LaneWorker("ref", sequential, capacity=len(clips) + 1)
        worker = LaneWorker("default", spec, capacity=len(clips) + 1)
        for lane in (reference, worker):
            for i, clip in enumerate(clips):
                lane.admit(i, ClipRequest(request_id=i, clip=clip), now=0.0)
            lane.step()  # under-capacity → worker launches speculatively
        assert worker.executor.stats.speculated == 1
        expected = [
            dict(vars(reference.state.slots[i].policy))
            for i in reference.state.occupied()
        ]

        worker.executor.close()
        stats = worker.executor.stats
        assert stats.rollbacks == 1
        assert [event.reason for event in stats.events] == ["abandoned"]
        after = [
            dict(vars(worker.state.slots[i].policy))
            for i in worker.state.occupied()
        ]
        assert after == expected


class TestMissedRollbackIsCaught:
    """Mutation-style self-check: disable the rollback restore and the
    differential harness must fail — proving the fuzz assertions have
    the power to catch a checkpoint/rollback regression."""

    def test_harness_catches_disabled_rollback(self, monkeypatch):
        from repro.runtime import stage_graph

        clips = (synthetic_workload(2, num_frames=8, base_seed=31)
                 + synthetic_workload(3, num_frames=5, base_seed=47))
        arrivals = [0.0, 0.0, 0.006, 0.012, 0.018]
        spec = PipelineSpec(network=NETWORK, policy="static", interval=3,
                            pipeline_depth=2)
        spec.warm()
        serial = run_workload(spec, clips, batch=False)

        def _serve():
            clock = _Clock()
            runtime = ServingRuntime(spec, ServerConfig(max_batch=3, clock=clock))
            requests = [
                ClipRequest(request_id=i, clip=clip, arrival_time=t)
                for i, (clip, t) in enumerate(zip(clips, arrivals))
            ]
            return runtime.serve(requests)

        # Sanity: with the real rollback the trace rolls back and matches.
        report = _serve()
        assert report.rollbacks > 0
        assert report.workload_result().matches(serial)

        # Mutant: restore_resource silently does nothing.
        monkeypatch.setattr(
            stage_graph, "restore_resource", lambda *args: None
        )
        mutant = _serve()
        assert mutant.rollbacks > 0  # rollbacks were *attempted*...
        # ...but the missed restore shifts the static policy's interval
        # counter, so the differential check must flag the divergence.
        assert not mutant.workload_result().matches(serial)


class _Clock:
    def __init__(self, tick=0.001):
        self.now = 0.0
        self.tick = tick

    def __call__(self):
        self.now += self.tick
        return self.now
