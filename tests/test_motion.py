"""Tests for the motion-estimation library: vector fields, block matching,
Lucas-Kanade, Horn-Schunck, and pyramidal flow."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.receptive_field import ReceptiveField
from repro.motion import (
    VectorField,
    block_match,
    horn_schunck,
    lucas_kanade,
    pool_to_grid,
    pyramid_flow,
    zero_field,
)
from repro.video.sprites import smooth_noise_texture


def textured(rng, h=64, w=64, smoothness=4):
    return smooth_noise_texture(h, w, rng, smoothness)


def shifted(frame, dy, dx):
    return np.roll(np.roll(frame, dy, axis=0), dx, axis=1)


class TestVectorField:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            VectorField(np.zeros((4, 4)))

    def test_magnitudes(self):
        data = np.zeros((2, 2, 2))
        data[0, 0] = (3, 4)
        field = VectorField(data)
        assert field.magnitudes()[0, 0] == pytest.approx(5.0)
        assert field.total_magnitude() == pytest.approx(5.0)
        assert field.mean_magnitude() == pytest.approx(1.25)

    def test_scaled_and_negated(self):
        data = np.ones((2, 2, 2))
        field = VectorField(data)
        np.testing.assert_allclose(field.scaled(0.5).data, 0.5)
        np.testing.assert_allclose(field.negated().data, -1.0)

    def test_endpoint_error(self):
        a = zero_field(4, 4)
        data = np.zeros((4, 4, 2))
        data[..., 1] = 2.0
        b = VectorField(data)
        assert a.endpoint_error(b) == pytest.approx(2.0)

    def test_endpoint_error_grid_mismatch(self):
        with pytest.raises(ValueError):
            zero_field(4, 4).endpoint_error(zero_field(5, 5))

    def test_pool_to_grid_uniform_field(self):
        data = np.zeros((32, 32, 2))
        data[..., 0] = 3.0
        rf = ReceptiveField(size=16, stride=8, padding=4)
        pooled = pool_to_grid(VectorField(data), rf, (4, 4))
        np.testing.assert_allclose(pooled.data[..., 0], 3.0)
        np.testing.assert_allclose(pooled.data[..., 1], 0.0)

    def test_pool_to_grid_averages_locally(self):
        """A field nonzero only on the left half pools to larger values in
        left-grid cells than right-grid cells."""
        data = np.zeros((32, 32, 2))
        data[:, :16, 1] = 4.0
        rf = ReceptiveField(size=8, stride=8, padding=0)
        pooled = pool_to_grid(VectorField(data), rf, (4, 4))
        assert pooled.data[0, 0, 1] > pooled.data[0, 3, 1]


class TestBlockMatching:
    def test_exhaustive_recovers_global_shift(self, rng):
        ref = textured(rng, smoothness=3)
        cur = shifted(ref, 3, -2)
        result = block_match(ref, cur, block_size=8, search_radius=6)
        interior = result.field.data[2:6, 2:6]
        np.testing.assert_allclose(interior[..., 0], -3)
        np.testing.assert_allclose(interior[..., 1], 2)

    @pytest.mark.parametrize("method", ["three_step", "diamond"])
    def test_fast_searches_never_worse_than_zero_offset(self, rng, method):
        """Greedy searches can stop in local minima, but they start from
        the zero offset so their match error never exceeds it."""
        ref = textured(rng, smoothness=3)
        cur = shifted(ref, 3, -2)
        fast = block_match(ref, cur, 8, 6, method)
        none = block_match(ref, cur, 8, 0, "exhaustive")  # zero-offset SAD
        assert (fast.errors <= none.errors + 1e-12).all()
        assert fast.errors.mean() < none.errors.mean()

    def test_identical_frames(self, rng):
        ref = textured(rng)
        result = block_match(ref, ref.copy(), block_size=8, search_radius=4)
        assert result.field.total_magnitude() == 0.0
        np.testing.assert_allclose(result.errors, 0.0)

    def test_exhaustive_comparison_count(self, rng):
        ref = textured(rng, 32, 32)
        result = block_match(ref, ref, block_size=8, search_radius=2, method="exhaustive")
        blocks = 16
        # zero-cost check + full 5x5 window per block.
        assert result.comparisons == blocks * (1 + 25)

    def test_fast_searches_cheaper_than_exhaustive(self, rng):
        ref = textured(rng)
        cur = shifted(ref, 2, 2)
        exhaustive = block_match(ref, cur, 8, 8, "exhaustive")
        three = block_match(ref, cur, 8, 8, "three_step")
        diamond = block_match(ref, cur, 8, 8, "diamond")
        assert three.comparisons < exhaustive.comparisons
        assert diamond.comparisons < exhaustive.comparisons

    @pytest.mark.parametrize(
        "block_size,radius,stride",
        [(8, 6, 1), (8, 6, 2), (16, 4, 1), (4, 8, 4)],
    )
    def test_batched_exhaustive_bit_identical_to_scalar_scan(
        self, rng, block_size, radius, stride
    ):
        """The batched SAD search must reproduce the per-block scalar scan
        bit for bit: same fields, same errors, same comparison count."""
        from repro.motion.block_matching import _sad, _search_exhaustive

        ref = textured(rng, smoothness=3)
        cur = shifted(ref, 3, -2) + rng.normal(0, 0.02, ref.shape)
        result = block_match(ref, cur, block_size, radius, "exhaustive", stride)

        n_by, n_bx = ref.shape[0] // block_size, ref.shape[1] // block_size
        comparisons = 0
        for by in range(n_by):
            for bx in range(n_bx):
                oy, ox = by * block_size, bx * block_size
                block = cur[oy : oy + block_size, ox : ox + block_size]
                best_cost = _sad(ref, block, oy, ox, 0, 0)
                comparisons += 1
                best = (0, 0)
                for dy, dx in _search_exhaustive(radius, stride):
                    cost = _sad(ref, block, oy, ox, dy, dx)
                    comparisons += 1
                    if cost < best_cost:
                        best_cost, best = cost, (dy, dx)
                assert tuple(result.field.data[by, bx]) == best
                expected = (
                    best_cost / (block_size * block_size)
                    if np.isfinite(best_cost)
                    else 0.0
                )
                assert result.errors[by, bx] == expected
        assert result.comparisons == comparisons

    def test_dense_upsampling(self, rng):
        ref = textured(rng, 32, 32)
        result = block_match(ref, shifted(ref, 2, 0), block_size=8, search_radius=4)
        dense = result.dense((32, 32))
        assert dense.grid_shape == (32, 32)
        # Interior pixel inherits its block's vector.
        np.testing.assert_allclose(dense.data[12, 12], result.field.data[1, 1])

    def test_validation(self, rng):
        ref = textured(rng, 16, 16)
        with pytest.raises(ValueError):
            block_match(ref, textured(rng, 8, 8))
        with pytest.raises(ValueError):
            block_match(ref, ref, method="psychic")
        with pytest.raises(ValueError):
            block_match(ref, ref, block_size=0)
        with pytest.raises(ValueError):
            block_match(ref, ref, block_size=32)


class TestOpticalFlow:
    def test_lucas_kanade_small_shift(self, rng):
        ref = textured(rng, smoothness=6)
        cur = shifted(ref, 0, 1)
        flow = lucas_kanade(ref, cur)
        # Backward flow: content came from +1 column to the left -> dx ~ -1.
        interior = flow.data[16:48, 16:48, 1]
        assert -1.6 < interior.mean() < -0.4

    def test_lucas_kanade_zero_on_identical(self, rng):
        ref = textured(rng)
        flow = lucas_kanade(ref, ref.copy())
        assert flow.total_magnitude() == pytest.approx(0.0, abs=1e-9)

    def test_lucas_kanade_flat_region_stays_zero(self):
        ref = np.full((32, 32), 0.5)
        cur = np.full((32, 32), 0.5)
        flow = lucas_kanade(ref, cur)
        assert flow.total_magnitude() == 0.0

    def test_horn_schunck_small_shift(self, rng):
        ref = textured(rng, smoothness=6)
        cur = shifted(ref, 1, 0)
        # Lower alpha weights the data term more, converging faster on
        # clean synthetic shifts.
        flow = horn_schunck(ref, cur, alpha=0.3, iterations=256)
        interior = flow.data[16:48, 16:48, 0]
        assert -1.8 < interior.mean() < -0.4

    def test_pyramid_flow_handles_large_shift(self, rng):
        """Single-level LK fails beyond its linear range; the pyramid
        recovers large displacements (the reason it stands in for
        FlowNet2-s)."""
        ref = textured(rng, smoothness=8)
        cur = shifted(ref, 0, 6)
        single = lucas_kanade(ref, cur)
        pyramid = pyramid_flow(ref, cur, levels=3)
        interior = slice(16, 48)
        single_err = abs(single.data[interior, interior, 1].mean() + 6)
        pyramid_err = abs(pyramid.data[interior, interior, 1].mean() + 6)
        assert pyramid_err < single_err

    def test_validation(self, rng):
        ref = textured(rng, 16, 16)
        bad = textured(rng, 8, 8)
        for fn in (lucas_kanade, horn_schunck, pyramid_flow):
            with pytest.raises(ValueError):
                fn(ref, bad)
        with pytest.raises(ValueError):
            lucas_kanade(ref, ref, window_sigma=0)
        with pytest.raises(ValueError):
            horn_schunck(ref, ref, alpha=0)
        with pytest.raises(ValueError):
            pyramid_flow(ref, ref, levels=0)


@settings(max_examples=10, deadline=None)
@given(dy=st.integers(-2, 2), dx=st.integers(-2, 2))
def test_block_match_exact_on_any_small_shift(dy, dx):
    rng = np.random.default_rng(17)
    ref = textured(rng, smoothness=3)
    cur = shifted(ref, dy, dx)
    result = block_match(ref, cur, block_size=8, search_radius=4)
    interior = result.field.data[2:6, 2:6]
    np.testing.assert_allclose(interior[..., 0], -dy)
    np.testing.assert_allclose(interior[..., 1], -dx)
