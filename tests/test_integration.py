"""End-to-end integration tests spanning video -> AMC -> metrics ->
hardware accounting, including the fixed-point datapath and RLE storage
in the loop — the flows a downstream user would actually wire up."""

import numpy as np
import pytest

from repro.analysis import run_policy
from repro.core import (
    AMCConfig,
    AMCExecutor,
    AlwaysKeyPolicy,
    EVA2Pipeline,
    MatchErrorPolicy,
    StaticPolicy,
)
from repro.hardware import Q8_8, VPUModel
from repro.hardware.rle import decode, encode
from repro.video import generate_clip, scenario


class TestEndToEndDetection:
    def test_full_amc_loop_close_to_precise(self, trained_fasterm):
        """A realistic clip under adaptive AMC scores within a modest gap
        of all-precise execution while skipping a large share of frames."""
        clips = [
            generate_clip(scenario(name), seed=600 + i, num_frames=12)
            for i, name in enumerate(["slow", "linear_motion", "camera_pan"])
        ]
        precise, _ = run_policy(
            AMCExecutor(trained_fasterm), AlwaysKeyPolicy(), clips, "detection"
        )
        amc, key_fraction = run_policy(
            AMCExecutor(trained_fasterm), MatchErrorPolicy(2.0), clips, "detection"
        )
        assert key_fraction < 0.8
        assert amc > precise - 0.15

    def test_fixed_point_pipeline_matches_float_closely(self, trained_fasterm):
        """Running the warp datapath in 16-bit fixed point must barely
        move detection outputs (the paper's hardware runs this way)."""
        clip = generate_clip(scenario("camera_pan"), seed=77, num_frames=8)
        float_ex = AMCExecutor(trained_fasterm, AMCConfig())
        fixed_ex = AMCExecutor(trained_fasterm, AMCConfig(fixed_point=Q8_8))
        for ex in (float_ex, fixed_ex):
            ex.process_key(clip.frames[0])
        est_f = float_ex.estimate(clip.frames[5])
        est_q = fixed_ex.estimate(clip.frames[5])
        out_f = float_ex.process_predicted(clip.frames[5], est_f)
        out_q = fixed_ex.process_predicted(clip.frames[5], est_q)
        assert np.abs(out_f - out_q).max() < 0.5

    def test_rle_roundtrip_inside_amc(self, trained_fasterm):
        """Storing the key activation through RLE (as the hardware does)
        then predicting from the decoded copy is lossless."""
        clip = generate_clip(scenario("linear_motion"), seed=5, num_frames=8)
        executor = AMCExecutor(trained_fasterm)
        executor.process_key(clip.frames[0])
        stored = executor.stored_activation()
        decoded = decode(encode(stored))
        np.testing.assert_array_equal(decoded, stored)

    def test_pipeline_feeds_hardware_model(self, trained_fasterm):
        """Measured key fraction + VPU model = the Fig. 13 'avg' bar."""
        clip = generate_clip(scenario("slow"), seed=8, num_frames=12)
        pipeline = EVA2Pipeline(AMCExecutor(trained_fasterm), StaticPolicy(4))
        result = pipeline.run_clip(clip)
        vpu = VPUModel("fasterm")
        avg = vpu.average_frame_cost(result.key_fraction)
        orig = VPUModel.total(vpu.baseline_frame_cost())
        assert avg.energy_mj < orig.energy_mj
        # With 25% keys the saving must be substantial.
        assert avg.energy_mj < 0.75 * orig.energy_mj


class TestEndToEndClassification:
    def test_memoized_classification_over_full_clipset(self, trained_alexnet):
        clips = [
            generate_clip(scenario("slow"), seed=650 + i, num_frames=10)
            for i in range(3)
        ]
        executor = AMCExecutor(trained_alexnet, AMCConfig(mode="memoize"))
        accuracy, key_fraction = run_policy(
            executor, StaticPolicy(5), clips, "classification"
        )
        precise, _ = run_policy(
            AMCExecutor(trained_alexnet, AMCConfig(mode="memoize")),
            AlwaysKeyPolicy(), clips, "classification",
        )
        assert key_fraction == pytest.approx(0.2, abs=0.05)
        # Slow scenes: memoized classification barely degrades.
        assert accuracy > precise - 0.1


class TestOcclusionBehaviour:
    def test_occlusion_change_raises_match_error(self, trained_fasterm):
        """The key-frame signal rises when occlusion *changes* between the
        key frame and the prediction — de-occlusion creates 'new pixels'
        motion cannot explain (§II-B condition 1, §II-C4)."""
        gap = 2
        executor = AMCExecutor(trained_fasterm)
        changed, unchanged = [], []
        for seed in range(30, 38):
            clip = generate_clip(scenario("occlusion"), seed=seed, num_frames=16)
            for start in range(0, len(clip) - gap, 2):
                executor.reset()
                executor.process_key(clip.frames[start])
                error = executor.estimate(clip.frames[start + gap]).total_match_error
                delta_occ = abs(
                    clip.annotations[start + gap].occluded_fraction
                    - clip.annotations[start].occluded_fraction
                )
                (changed if delta_occ > 0.1 else unchanged).append(error)
        assert changed, "no occlusion-change events generated"
        assert np.mean(changed) > np.mean(unchanged)

    def test_lighting_change_raises_match_error_without_motion(
        self, trained_fasterm
    ):
        from repro.video import SceneConfig
        from repro.video.generator import generate_clip as gen

        still = SceneConfig(name="still", speed=(0.0, 0.0), noise_sigma=0.0)
        # period 8: frame 2 sits at the sinusoid's peak (gain 1.25).
        lit = SceneConfig(
            name="lit", speed=(0.0, 0.0), noise_sigma=0.0,
            lighting_amplitude=0.25, lighting_period=8.0,
        )
        executor = AMCExecutor(trained_fasterm)
        errors = {}
        for config in (still, lit):
            clip = gen(config, seed=9, num_frames=4)
            executor.reset()
            executor.process_key(clip.frames[0])
            errors[config.name] = executor.estimate(clip.frames[2]).total_match_error
        assert errors["lit"] > errors["still"] + 1.0


class TestDeterminism:
    def test_pipeline_fully_deterministic(self, trained_fasterm):
        clip = generate_clip(scenario("chaotic"), seed=3, num_frames=8)
        outputs = []
        for _ in range(2):
            pipeline = EVA2Pipeline(
                AMCExecutor(trained_fasterm), MatchErrorPolicy(2.0)
            )
            result = pipeline.run_clip(clip)
            outputs.append((result.outputs(), result.key_mask()))
        np.testing.assert_array_equal(outputs[0][0], outputs[1][0])
        np.testing.assert_array_equal(outputs[0][1], outputs[1][1])
