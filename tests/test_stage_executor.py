"""Stage-graph scheduling and the pipelined executor.

PR 5 promoted :class:`~repro.runtime.stage_graph.StageGraph` from a
validated wiring diagram into a dependency-driven executor: stages are
topologically scheduled from their declared inputs/outputs, validation
failures raise *named* errors, declared read/write sets prove which
stages of consecutive steps may overlap, and
:class:`~repro.runtime.stage_graph.StageExecutor` software-pipelines the
conflict-free head of step ``t+1`` into step ``t``'s tail — bit-identical
to sequential execution by construction.
"""

import pytest

from repro.core.stages import (
    ENGINE_SCRATCH,
    KEY_STATE,
    PLAN_SCRATCH,
    POLICY_STATE,
)
from repro.runtime import (
    ClipRequest,
    DuplicateOutputError,
    LaneWorker,
    PipelineContractError,
    PipelineSpec,
    Stage,
    StageCycleError,
    StageExecutor,
    StageGraph,
    StageGraphError,
    UndeclaredInputError,
    WriteSetViolationError,
    frame_lifecycle_graph,
    synthetic_workload,
)

NETWORK = "mini_fasterm"


@pytest.fixture(scope="module")
def spec():
    spec = PipelineSpec(network=NETWORK, policy="static", interval=2)
    spec.warm()
    return spec


@pytest.fixture(scope="module")
def clips():
    return synthetic_workload(3, num_frames=6, base_seed=4)


def _stage(name, fn, inputs, outputs, reads=(), writes=()):
    return Stage(name, fn, tuple(inputs), tuple(outputs),
                 frozenset(reads), frozenset(writes))


class TestValidationErrors:
    """Each declaration failure mode raises its own named error."""

    def test_cycle_detected(self):
        a = _stage("a", lambda batch, y: 1, ("batch", "y"), ("x",))
        b = _stage("b", lambda batch, x: 2, ("batch", "x"), ("y",))
        with pytest.raises(StageCycleError, match="cycle"):
            StageGraph([a, b])

    def test_self_cycle_detected(self):
        loop = _stage("loop", lambda batch, x: x, ("batch", "x"), ("x",))
        with pytest.raises(StageCycleError):
            StageGraph([loop])

    def test_undeclared_input(self):
        with pytest.raises(UndeclaredInputError, match="consumes"):
            StageGraph(
                [_stage("a", lambda batch, x: x, ("batch", "missing"), ("y",))]
            )

    def test_duplicate_output_producer(self):
        a = _stage("a", lambda batch: 1, ("batch",), ("x",))
        b = _stage("b", lambda batch: 2, ("batch",), ("x",))
        with pytest.raises(DuplicateOutputError, match="redefine"):
            StageGraph([a, b])

    def test_seed_name_cannot_be_produced(self):
        with pytest.raises(DuplicateOutputError):
            StageGraph([_stage("a", lambda batch: 1, ("batch",), ("batch",))])

    def test_all_named_errors_are_value_errors(self):
        for error in (StageCycleError, UndeclaredInputError,
                      DuplicateOutputError, WriteSetViolationError):
            assert issubclass(error, StageGraphError)
            assert issubclass(error, ValueError)


class TestTopologicalSchedule:
    def test_out_of_order_declaration_is_scheduled(self):
        """Declaration order no longer constrains execution order."""
        consume = _stage("consume", lambda batch, x: x + 1, ("batch", "x"),
                         ("y",))
        produce = _stage("produce", lambda batch: 41, ("batch",), ("x",))
        graph = StageGraph([consume, produce])
        assert [stage.name for stage in graph] == ["produce", "consume"]
        assert graph.run(batch=None)["y"] == 42

    def test_declaration_order_breaks_ties(self):
        stages = [
            _stage(name, lambda batch: 1, ("batch",), (f"out_{name}",))
            for name in ("c", "a", "b")
        ]
        graph = StageGraph(stages)
        assert [stage.name for stage in graph] == ["c", "a", "b"]


class TestWriteSetEnforcement:
    def _occupied_batch(self, spec, clips):
        worker = LaneWorker("default", spec, capacity=len(clips))
        for i, clip in enumerate(clips):
            worker.admit(i, ClipRequest(request_id=i, clip=clip), now=0.0)
            worker.step()
        return worker._build_batch(
            [i for i, r in enumerate(worker.residents) if r is not None]
        )

    def test_undeclared_policy_mutation_raises(self, spec, clips):
        batch = self._occupied_batch(spec, clips)

        def rogue(batch):
            batch.slot(0).policy._frames_since_key += 1  # undeclared write
            return "done"

        graph = StageGraph([_stage("rogue", rogue, ("batch",), ("x",))])
        with pytest.raises(WriteSetViolationError, match="policy_state"):
            graph.run(batch, enforce_writes=True)

    def test_undeclared_key_state_mutation_raises(self, spec, clips):
        batch = self._occupied_batch(spec, clips)

        def rogue(batch):
            batch.slot(0).executor.reset()  # drops stored key state
            return "done"

        graph = StageGraph([_stage("rogue", rogue, ("batch",), ("x",))])
        with pytest.raises(WriteSetViolationError, match="key_state"):
            graph.run(batch, enforce_writes=True)

    def test_declared_mutation_passes(self, spec, clips):
        """A stage whose write set covers its mutation is accepted."""
        batch = self._occupied_batch(spec, clips)

        def declared(batch):
            batch.slot(0).policy._frames_since_key += 1
            return "done"

        graph = StageGraph(
            [_stage("declared", declared, ("batch",), ("x",),
                    writes={POLICY_STATE})]
        )
        assert graph.run(batch, enforce_writes=True)["x"] == "done"

    def test_lifecycle_graph_honours_its_declarations(self, spec, clips):
        """The real frame lifecycle runs clean under full enforcement —
        every mutation it performs is one it declared."""
        batch = self._occupied_batch(spec, clips)
        env = frame_lifecycle_graph(planned=True).run(
            batch, enforce_writes=True
        )
        assert len(env["records"]) == len(batch)


class TestOverlapSplit:
    def test_planned_lifecycle_split(self):
        """The paper's overlap: RFBME/decide against warp/suffix/record,
        fenced by cnn_prefix (its key adoption feeds the next RFBME)."""
        head, mid, tail = frame_lifecycle_graph(planned=True).overlap_split()
        assert [stage.name for stage in head] == ["rfbme", "decide"]
        assert [stage.name for stage in mid] == ["cnn_prefix"]
        assert [stage.name for stage in tail] == ["warp", "cnn_suffix",
                                                  "record"]

    def test_legacy_lifecycle_split(self):
        """legacy_cnn adopts key state, so only record can overlap it."""
        head, mid, tail = frame_lifecycle_graph(planned=False).overlap_split()
        assert [stage.name for stage in tail] == ["record"]
        assert "legacy_cnn" not in {stage.name for stage in tail}

    def test_conflicting_graph_does_not_pipeline(self):
        """Every stage touching one resource leaves no overlap window."""
        a = _stage("a", lambda batch: 1, ("batch",), ("x",),
                   writes={KEY_STATE})
        b = _stage("b", lambda batch, x: x, ("batch", "x"), ("y",),
                   reads={KEY_STATE}, writes={KEY_STATE})
        graph = StageGraph([a, b])
        head, mid, tail = graph.overlap_split()
        assert head == () and tail == ()
        assert not StageExecutor(graph, pipeline_depth=2).pipelined

    def test_effects_default_from_stage_functions(self):
        """Stages inherit the read/write sets their functions declare."""
        graph = frame_lifecycle_graph(planned=True)
        by_name = {stage.name: stage for stage in graph}
        assert by_name["rfbme"].reads == {KEY_STATE}
        assert by_name["rfbme"].writes == {ENGINE_SCRATCH}
        assert by_name["decide"].writes == {POLICY_STATE}
        assert KEY_STATE in by_name["cnn_prefix"].writes
        assert by_name["warp"].reads == {KEY_STATE}
        assert by_name["cnn_suffix"].writes == {PLAN_SCRATCH}
        assert by_name["record"].writes == frozenset()


class TestStageExecutor:
    def _toy_graph(self, log):
        """a → b → c over integer 'batches'; a may overlap b/c."""

        def stage_a(batch):
            log.append(("a", batch))
            return batch * 10

        def stage_b(batch, x):
            log.append(("b", batch))
            return x + 1

        def stage_c(batch, y):
            log.append(("c", batch))
            return y * 2

        return StageGraph(
            [
                _stage("a", stage_a, ("batch",), ("x",)),
                _stage("b", stage_b, ("batch", "x"), ("y",)),
                _stage("c", stage_c, ("batch", "y"), ("z",)),
            ]
        )

    def test_depth_one_is_sequential(self):
        log = []
        executor = StageExecutor(self._toy_graph(log), pipeline_depth=1)
        assert not executor.pipelined
        env = executor.step(3)
        assert env["z"] == 62
        assert log == [("a", 3), ("b", 3), ("c", 3)]

    def test_pipelined_stream_matches_sequential(self):
        batches = list(range(1, 7))
        sequential = [
            StageExecutor(self._toy_graph([]), 1).step(batch)["z"]
            for batch in batches
        ]
        log = []
        executor = StageExecutor(self._toy_graph(log), pipeline_depth=2)
        assert executor.pipelined
        pipelined = []
        try:
            for t, batch in enumerate(batches):
                next_batch = batches[t + 1] if t + 1 < len(batches) else None
                pipelined.append(
                    executor.step(batch, next_batch=next_batch)["z"]
                )
        finally:
            executor.close()
        assert pipelined == sequential
        # Per-stage program order is preserved across in-flight contexts.
        for name in "abc":
            seen = [batch for stage, batch in log if stage == name]
            assert seen == batches

    def test_next_batch_must_be_definite(self):
        executor = StageExecutor(self._toy_graph([]), pipeline_depth=2)
        try:
            executor.step(1, next_batch=2)
            with pytest.raises(PipelineContractError):
                executor.step(99)
        finally:
            executor.close()

    def test_close_allows_reuse(self):
        executor = StageExecutor(self._toy_graph([]), pipeline_depth=2)
        executor.step(1, next_batch=2)
        executor.close()  # abandons the in-flight head
        assert executor.step(5)["z"] == 102
        executor.close()

    def test_speculative_mismatch_rolls_back_and_replays(self):
        """A mispredicted speculative handoff must not raise: the
        executor rolls the head back, records a named event, and replays
        inline against the true batch — results stay sequential."""
        sequential = [
            StageExecutor(self._toy_graph([]), 1).step(batch)["z"]
            for batch in (1, 2, 3)
        ]
        log = []
        executor = StageExecutor(self._toy_graph(log), pipeline_depth=2)
        try:
            out = [
                executor.step(1, next_batch=99, speculative=True)["z"],
                executor.step(2, next_batch=3, speculative=True)["z"],
                executor.step(3)["z"],
            ]
        finally:
            executor.close()
        assert out == sequential
        stats = executor.stats
        assert (stats.steps, stats.speculated) == (3, 2)
        assert stats.rollbacks == 1  # batch 99 never arrived
        assert stats.pipelined_steps == 1  # batch 3's head was a hit
        assert [event.reason for event in stats.events] == [
            "membership-mismatch"
        ]
        assert stats.engagement == pytest.approx(1 / 3)
        assert stats.rollback_rate == pytest.approx(1 / 2)
        # The mispredicted head really ran, and batch 2's head re-ran
        # inline after the rollback.
        assert ("a", 99) in log
        assert ("a", 2) in log

    def test_close_rolls_back_speculative_head_with_named_event(self):
        executor = StageExecutor(self._toy_graph([]), pipeline_depth=2)
        executor.step(1, next_batch=2, speculative=True)
        executor.close()
        assert executor.stats.rollbacks == 1
        assert executor.stats.events[-1].reason == "abandoned"
        executor.reset_stats()
        assert executor.stats.steps == 0
        assert executor.stats.events == []
        assert executor.step(5)["z"] == 102  # still usable after close
        executor.close()

    def test_bad_depth_rejected(self):
        with pytest.raises(ValueError, match="pipeline_depth"):
            StageExecutor(self._toy_graph([]), pipeline_depth=0)

    def test_seed_skips_stages_in_executor(self):
        log = []
        executor = StageExecutor(self._toy_graph(log), pipeline_depth=1)
        env = executor.step(3, seed={"x": 100})
        assert env["z"] == 202
        assert ("a", 3) not in log

    def test_seed_merges_into_pipelined_step(self):
        """Seeds for non-head values are honoured even when the step's
        head was computed in flight; seeds for head outputs arrive too
        late and are refused rather than silently dropped."""
        executor = StageExecutor(self._toy_graph([]), pipeline_depth=2)
        try:
            executor.step(1, next_batch=2)
            env = executor.step(2, seed={"y": 500})  # 'b' is skipped
            assert env["z"] == 1000
        finally:
            executor.close()

        executor = StageExecutor(self._toy_graph([]), pipeline_depth=2)
        try:
            executor.step(1, next_batch=2)
            with pytest.raises(PipelineContractError, match="already"):
                executor.step(2, seed={"x": 7})  # head output 'x'
        finally:
            executor.close()
