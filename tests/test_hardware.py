"""Tests for the hardware substrate: fixed point, RLE, layer tables, cost
models, and the composed VPU — including checks against the paper's
published numbers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.receptive_field import receptive_field_of
from repro.hardware import (
    EDRAM,
    PAPER_TARGET_LAYERS,
    Q8_8,
    Cost,
    EIEModel,
    EVA2Model,
    EVA2Params,
    EyerissModel,
    QFormat,
    SearchParams,
    VPUConfig,
    VPUModel,
    alexnet_spec,
    decode,
    encode,
    faster16_spec,
    fasterm_spec,
    spec_by_name,
    storage_report,
    vgg16_spec,
)
from repro.hardware.rfbme_ops import rfbme_ops, unoptimized_ops
from repro.nn import build_mini_fasterm


class TestFixedPoint:
    def test_roundtrip_exact_for_representable(self):
        fmt = QFormat(4, 4)
        values = np.array([0.0, 1.5, -2.25, 7.9375])
        np.testing.assert_array_equal(fmt.roundtrip(values), values)

    def test_saturation(self):
        fmt = QFormat(4, 4)
        assert fmt.roundtrip(np.array([100.0]))[0] == fmt.max_value
        assert fmt.roundtrip(np.array([-100.0]))[0] == fmt.min_value

    def test_resolution(self):
        fmt = QFormat(8, 7)
        assert fmt.resolution == 1 / 128
        assert fmt.total_bits == 16

    def test_multiply_matches_float_within_resolution(self):
        fmt = QFormat(4, 8)
        a, b = 1.5, 2.25
        raw = fmt.multiply(fmt.quantize(np.array([a])), fmt.quantize(np.array([b])))
        assert abs(fmt.dequantize(raw)[0] - a * b) <= 2 * fmt.resolution

    def test_add_saturates(self):
        fmt = QFormat(2, 2)
        raw = fmt.add(fmt.quantize(np.array([3.5])), fmt.quantize(np.array([3.5])))
        assert fmt.dequantize(raw)[0] == fmt.max_value

    def test_invalid_format(self):
        with pytest.raises(ValueError):
            QFormat(-1, 4)
        with pytest.raises(ValueError):
            QFormat(0, 0)

    def test_quantization_error_bound(self, rng):
        values = rng.uniform(-100, 100, size=1000)
        fmt = QFormat(8, 7)
        assert fmt.quantization_error(values) <= fmt.resolution / 2 + 1e-12

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000))
    def test_roundtrip_error_property(self, seed):
        rng = np.random.default_rng(seed)
        values = rng.uniform(Q8_8.min_value, Q8_8.max_value, size=64)
        err = np.abs(Q8_8.roundtrip(values) - values)
        assert err.max() <= Q8_8.resolution / 2 + 1e-12


class TestRLE:
    def test_roundtrip_sparse(self, rng):
        act = rng.normal(size=(4, 8, 8))
        act[np.abs(act) < 1.0] = 0.0  # sparsify
        stream = encode(act)
        np.testing.assert_array_equal(decode(stream), act)

    def test_roundtrip_dense(self, rng):
        act = rng.normal(size=(2, 4, 4)) + 10.0  # all nonzero
        np.testing.assert_array_equal(decode(encode(act)), act)

    def test_all_zero(self):
        act = np.zeros((2, 6, 6))
        stream = encode(act)
        np.testing.assert_array_equal(decode(stream), act)

    def test_gap_overflow_handled(self):
        """Runs longer than the gap field emit placeholder entries and
        still decode exactly."""
        act = np.zeros((1, 1, 64))
        act[0, 0, 60] = 5.0
        stream = encode(act, gap_bits=4)  # max gap 15 << 60
        assert stream.num_entries > 1
        np.testing.assert_array_equal(decode(stream), act)

    def test_compression_on_realistic_sparsity(self, rng):
        """~85% zeros (post-ReLU level) -> >70% storage saving."""
        act = rng.normal(size=(16, 16, 16))
        act[rng.random(act.shape) < 0.85] = 0.0
        report = storage_report(act)
        assert report["saving_percent"] > 70.0

    def test_paper_sparsity_gives_paper_saving(self, rng):
        """The paper's >80% saving corresponds to ~15% density."""
        act = rng.normal(size=(16, 16, 16))
        act[rng.random(act.shape) < 0.87] = 0.0
        report = storage_report(act)
        assert report["saving_percent"] > 80.0

    def test_tolerance_rounds_near_zeros(self):
        act = np.array([[[0.001, 1.0, -0.002, 2.0]]])
        stream = encode(act, tolerance=0.01)
        decoded = decode(stream)
        np.testing.assert_array_equal(decoded[0, 0], [0.0, 1.0, 0.0, 2.0])

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            encode(rng.normal(size=(4, 4)))
        with pytest.raises(ValueError):
            encode(rng.normal(size=(1, 4, 4)), gap_bits=0)
        with pytest.raises(ValueError):
            encode(rng.normal(size=(1, 4, 4)), tolerance=-1.0)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000), density=st.floats(0.0, 1.0))
    def test_roundtrip_property(self, seed, density):
        rng = np.random.default_rng(seed)
        act = rng.normal(size=(2, 6, 6))
        act[rng.random(act.shape) > density] = 0.0
        np.testing.assert_array_equal(decode(encode(act, gap_bits=3)), act)


class TestLayerStats:
    def test_faster16_prefix_matches_paper(self):
        """Paper §IV-A: the conv5_3 prefix at 1000x562 is 1.7e11 MACs."""
        spec = faster16_spec()
        assert spec.prefix_macs("conv5_3") == pytest.approx(1.7e11, rel=0.02)

    def test_alexnet_macs_match_published(self):
        spec = alexnet_spec()
        assert spec.conv_macs() == pytest.approx(6.7e8, rel=0.02)
        assert spec.fc_macs() == pytest.approx(5.9e7, rel=0.02)

    def test_vgg16_macs_match_published(self):
        spec = vgg16_spec()
        assert spec.conv_macs() == pytest.approx(1.53e10, rel=0.02)

    def test_conv5_3_receptive_field(self):
        """VGG-16 conv5_3: the well-known RF size 196, stride 16."""
        size, stride, _ = faster16_spec().receptive_field("conv5_3")
        assert (size, stride) == (196, 16)

    def test_receptive_field_matches_core_implementation(self):
        """Cross-check the duplicated recurrence against the core module
        on an equivalent layer sequence."""
        net = build_mini_fasterm()
        rf = receptive_field_of(net, net.last_spatial_layer())
        # Rebuild the same geometry as a spec-level propagation.
        from repro.hardware.layer_stats import ConvSpec, NetworkSpec, PoolSpec

        spec = NetworkSpec(
            "mini_fasterm_shape",
            (1, 64, 64),
            [
                ConvSpec("conv1", 8, kernel=5, stride=2, pad=2),
                PoolSpec("pool1", 2, 2),
                ConvSpec("conv2", 16, kernel=3, pad=1),
                ConvSpec("conv3", 24, kernel=3, pad=1),
                PoolSpec("pool2", 2, 2),
                ConvSpec("conv4", 24, kernel=3, pad=1),
                ConvSpec("conv5", 16, kernel=3, pad=1),
            ],
        )
        assert spec.receptive_field("conv5") == (rf.size, rf.stride, rf.padding)

    def test_rf_through_fc_rejected(self):
        with pytest.raises(ValueError):
            alexnet_spec().receptive_field("fc6")

    def test_unknown_layer(self):
        with pytest.raises(KeyError):
            alexnet_spec().prefix_macs("conv9")

    def test_unknown_spec(self):
        with pytest.raises(KeyError):
            spec_by_name("resnet")

    def test_grouped_conv_halves_macs(self):
        spec = alexnet_spec()
        conv2 = spec.layer("conv2")
        # groups=2: in_per_group = 48.
        assert conv2.macs == 27 * 27 * 256 * 48 * 25

    def test_fc_instances_multiply_macs_not_weights(self):
        spec = fasterm_spec()
        fc7 = spec.layer("fc7")
        assert fc7.macs == 1024 * 1024 * 300
        assert fc7.weights == 1024 * 1024


class TestRFBMEOps:
    def test_paper_unoptimized_number(self):
        """Paper §IV-A: ~3e9 adds for the unoptimized variant."""
        ops = unoptimized_ops(62, 35, 196, SearchParams(24, 8))
        assert ops == pytest.approx(3e9, rel=0.05)

    def test_paper_rfbme_number(self):
        """Paper §IV-A: ~1.3e7 adds with tile reuse."""
        ops = rfbme_ops(62, 35, 196, 16, SearchParams(24, 8))
        assert ops == pytest.approx(1.3e7, rel=0.12)

    def test_reuse_benefit_scales_with_stride_squared(self):
        small = rfbme_ops(32, 32, 64, 4, SearchParams(8, 4))
        large = rfbme_ops(32, 32, 64, 16, SearchParams(8, 4))
        assert large < small

    def test_validation(self):
        with pytest.raises(ValueError):
            SearchParams(0, 1)
        with pytest.raises(ValueError):
            unoptimized_ops(0, 10, 16, SearchParams())
        with pytest.raises(ValueError):
            rfbme_ops(10, 10, 16, 0, SearchParams())


class TestCost:
    def test_add_and_scale(self):
        total = Cost(1.0, 2.0) + Cost(3.0, 4.0)
        assert total == Cost(4.0, 6.0)
        assert 2 * Cost(1.0, 2.0) == Cost(2.0, 4.0)

    def test_sum(self):
        assert Cost.sum([Cost(1, 1), Cost(2, 2)]) == Cost(3.0, 3.0)
        assert Cost.sum([]) == Cost.zero()


class TestAcceleratorModels:
    def test_eyeriss_calibration_reproduces_table1_orig(self):
        """Energy/latency of each network's conv MACs must land on the
        Table I orig row it was calibrated to."""
        for name, spec_fn, ms, mj in [
            ("AlexNet", alexnet_spec, 115.4, 32.2),
            ("Faster16", faster16_spec, 4370.1, 1035.5),
            ("FasterM", fasterm_spec, 492.3, 116.7),
        ]:
            model = EyerissModel(name)
            macs = spec_fn().conv_macs()
            assert model.latency_ms(macs) == pytest.approx(ms, rel=1e-6)
            assert model.energy_mj(macs) == pytest.approx(mj, rel=1e-6)

    def test_eie_cheaper_per_mac_than_eyeriss(self):
        eie = EIEModel()
        eyeriss = EyerissModel("Faster16")
        macs = int(1e9)
        assert eie.energy_mj(macs) < eyeriss.energy_mj(macs)
        assert eie.latency_ms(macs) < eyeriss.latency_ms(macs)

    def test_unknown_network_falls_back(self):
        model = EyerissModel("SqueezeNet")
        assert model.calibration is EyerissModel("Faster16").calibration


class TestEVA2Model:
    def _faster16_eva2(self):
        return EVA2Model(
            EVA2Params(
                frame_height=562,
                frame_width=1000,
                rfield_size=196,
                rfield_stride=16,
                grid_height=35,
                grid_width=62,
                channels=512,
                density=0.2,
            )
        )

    def test_area_near_paper(self):
        """Paper Fig. 12: EVA2 is 2.6 mm2."""
        area = self._faster16_eva2().area_breakdown()
        assert area["total_mm2"] == pytest.approx(2.6, rel=0.1)

    def test_pixel_buffers_dominate_area(self):
        """Paper: pixel buffers are 54.5% of EVA2 area."""
        area = self._faster16_eva2().area_breakdown()
        fraction = area["pixel_buffers_mm2"] / area["total_mm2"]
        assert 0.4 < fraction < 0.65

    def test_costs_positive_and_small(self):
        model = self._faster16_eva2()
        me = model.motion_estimation_cost()
        warp = model.warp_cost()
        assert me.latency_ms > 0 and me.energy_mj > 0
        assert warp.latency_ms > 0 and warp.energy_mj > 0
        # EVA2 work is far below one conv-layer execution (~mJ scale).
        assert (me + warp).energy_mj < 5.0

    def test_warp_cost_scales_with_density(self):
        dense = EVA2Params(
            frame_height=562, frame_width=1000, rfield_size=196,
            rfield_stride=16, grid_height=35, grid_width=62, channels=512,
            density=0.8,
        )
        sparse_cost = self._faster16_eva2().warp_cost()
        dense_cost = EVA2Model(dense).warp_cost()
        assert dense_cost.energy_mj > sparse_cost.energy_mj
        assert dense_cost.latency_ms > sparse_cost.latency_ms

    def test_params_validation(self):
        with pytest.raises(ValueError):
            EVA2Params(
                frame_height=0, frame_width=10, rfield_size=8, rfield_stride=8,
                grid_height=1, grid_width=1, channels=1,
            )
        with pytest.raises(ValueError):
            EVA2Params(
                frame_height=10, frame_width=10, rfield_size=8, rfield_stride=8,
                grid_height=1, grid_width=1, channels=1, density=2.0,
            )
        with pytest.raises(ValueError):
            EVA2Params(
                frame_height=10, frame_width=10, rfield_size=4, rfield_stride=8,
                grid_height=1, grid_width=1, channels=1,
            )


class TestVPUModel:
    @pytest.mark.parametrize("name", ["alexnet", "faster16", "fasterm"])
    def test_predicted_cheaper_than_key(self, name):
        vpu = VPUModel(name)
        key = VPUModel.total(vpu.key_frame_cost())
        pred = VPUModel.total(vpu.predicted_frame_cost())
        assert pred.energy_mj < key.energy_mj
        assert pred.latency_ms < key.latency_ms

    def test_faster16_pred_is_small_fraction(self):
        """Fig. 13: Faster16 predicted frames cost a few % of orig."""
        vpu = VPUModel("faster16")
        orig = VPUModel.total(vpu.baseline_frame_cost())
        pred = VPUModel.total(vpu.predicted_frame_cost())
        assert pred.energy_mj / orig.energy_mj < 0.15

    def test_average_interpolates(self):
        vpu = VPUModel("fasterm")
        key = VPUModel.total(vpu.key_frame_cost())
        pred = VPUModel.total(vpu.predicted_frame_cost())
        avg = vpu.average_frame_cost(0.5)
        assert pred.energy_mj < avg.energy_mj < key.energy_mj

    def test_average_extremes(self):
        vpu = VPUModel("fasterm")
        assert vpu.average_frame_cost(1.0) == VPUModel.total(vpu.key_frame_cost())
        assert vpu.average_frame_cost(0.0) == VPUModel.total(vpu.predicted_frame_cost())
        with pytest.raises(ValueError):
            vpu.average_frame_cost(1.5)

    def test_memoize_skips_warp(self):
        warp = VPUModel("alexnet", VPUConfig(memoize=False))
        memo = VPUModel("alexnet", VPUConfig(memoize=True))
        assert (
            VPUModel.total(memo.predicted_frame_cost()).energy_mj
            < VPUModel.total(warp.predicted_frame_cost()).energy_mj
        )

    def test_area_breakdown_matches_fig12(self):
        """EVA2 is ~3.5% of the three-unit VPU (paper Fig. 12)."""
        vpu = VPUModel("faster16")
        area = vpu.area_breakdown()
        assert area["eyeriss_mm2"] == 12.2
        assert area["eie_mm2"] == 58.9
        assert 0.02 < area["eva2_fraction"] < 0.05

    def test_paper_target_layers(self):
        assert PAPER_TARGET_LAYERS["Faster16"] == "conv5_3"
        vpu = VPUModel("faster16")
        assert vpu.target == "conv5_3"

    def test_orig_has_no_eva2_cost(self):
        vpu = VPUModel("fasterm")
        assert vpu.baseline_frame_cost()["eva2"] == Cost.zero()


class TestMemoryTech:
    def test_area_scales_linearly(self):
        one_mb = EDRAM.area_mm2(1024 * 1024)
        two_mb = EDRAM.area_mm2(2 * 1024 * 1024)
        assert two_mb == pytest.approx(2 * one_mb)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            EDRAM.area_mm2(-1)
