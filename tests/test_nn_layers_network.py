"""Tests for layer classes and the Network container, focused on the
structural queries AMC relies on (spatiality, prefix/suffix, MAC counts)."""

import numpy as np
import pytest

from repro.nn import (
    Conv2d,
    Flatten,
    Linear,
    MaxPool2d,
    Network,
    ReLU,
    build_mini_alexnet,
    build_mini_faster16,
    build_mini_fasterm,
)


def tiny_network():
    rng = np.random.default_rng(0)
    return Network(
        "tiny",
        [
            Conv2d("conv1", 1, 4, kernel=3, stride=1, pad=1, rng=rng),
            ReLU("relu1"),
            MaxPool2d("pool1", 2, 2),
            Conv2d("conv2", 4, 8, kernel=3, stride=1, pad=1, rng=rng),
            ReLU("relu2"),
            Flatten("flatten"),
            Linear("fc", 8 * 8 * 8, 10, rng=rng),
        ],
        (1, 16, 16),
    )


class TestLayerBasics:
    def test_conv_output_shape(self):
        conv = Conv2d("c", 3, 8, kernel=3, stride=2, pad=1)
        assert conv.output_shape((3, 16, 16)) == (8, 8, 8)

    def test_conv_channel_check(self):
        conv = Conv2d("c", 3, 8, kernel=3)
        with pytest.raises(ValueError):
            conv.output_shape((4, 16, 16))

    def test_conv_macs_formula(self):
        # paper §IV-A: outputs x in_c x k x k
        conv = Conv2d("c", 3, 8, kernel=3, stride=1, pad=1)
        assert conv.macs((3, 16, 16)) == 16 * 16 * 8 * 3 * 3 * 3

    def test_linear_macs(self):
        fc = Linear("f", 100, 10)
        assert fc.macs((100,)) == 1000

    def test_spatiality_flags(self):
        assert Conv2d("c", 1, 1, kernel=1).is_spatial
        assert MaxPool2d("p", 2, 2).is_spatial
        assert ReLU("r").is_spatial
        assert not Flatten("f").is_spatial
        assert not Linear("l", 4, 2).is_spatial

    def test_backward_without_train_forward_raises(self, rng):
        conv = Conv2d("c", 1, 2, kernel=3, pad=1)
        conv.forward(rng.normal(size=(1, 1, 8, 8)), train=False)
        with pytest.raises(RuntimeError):
            conv.backward(rng.normal(size=(1, 2, 8, 8)))

    def test_param_count(self):
        conv = Conv2d("c", 2, 4, kernel=3)
        assert conv.param_count() == 4 * 2 * 9 + 4


class TestNetworkStructure:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            Network(
                "dup",
                [ReLU("same"), ReLU("same")],
                (1, 8, 8),
            )

    def test_shape_propagation_validated_at_construction(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            Network(
                "bad",
                [
                    Conv2d("c1", 1, 4, kernel=3, rng=rng),
                    Conv2d("c2", 8, 4, kernel=3, rng=rng),  # wrong in_channels
                ],
                (1, 16, 16),
            )

    def test_last_spatial_layer(self):
        net = tiny_network()
        assert net.last_spatial_layer() == "relu2"

    def test_first_post_pool_layer(self):
        net = tiny_network()
        assert net.first_post_pool_layer() == "pool1"

    def test_spatial_layers_stop_at_flatten(self):
        net = tiny_network()
        assert net.spatial_layers() == ["conv1", "relu1", "pool1", "conv2", "relu2"]

    def test_validate_target_rejects_nonspatial_prefix(self):
        net = tiny_network()
        with pytest.raises(ValueError):
            net.validate_target("fc")

    def test_prefix_suffix_partition(self):
        net = tiny_network()
        prefix = net.prefix_layers("pool1")
        suffix = net.suffix_layers("pool1")
        assert [layer.name for layer in prefix] == ["conv1", "relu1", "pool1"]
        assert [layer.name for layer in suffix] == [
            "conv2", "relu2", "flatten", "fc",
        ]

    def test_prefix_plus_suffix_macs_equals_total(self):
        net = tiny_network()
        total = sum(net.macs_per_layer().values())
        assert net.prefix_macs("pool1") + net.suffix_macs("pool1") == total


class TestNetworkExecution:
    def test_prefix_then_suffix_equals_full(self, rng):
        net = tiny_network()
        x = rng.normal(size=(2, 1, 16, 16))
        full = net.forward(x)
        act = net.forward_prefix(x, "relu2")
        split = net.forward_suffix(act, "relu2")
        np.testing.assert_allclose(full, split)

    def test_layer_output_shape_matches_execution(self, rng):
        net = tiny_network()
        x = rng.normal(size=(1, 1, 16, 16))
        act = net.forward_prefix(x, "conv2")
        assert act.shape[1:] == net.layer_output_shape("conv2")

    def test_state_dict_roundtrip(self, rng):
        net = tiny_network()
        state = net.state_dict()
        other = tiny_network()
        for layer in other.layers:
            for key in layer.params:
                layer.params[key] += 1.0  # perturb
        other.load_state_dict(state)
        x = rng.normal(size=(1, 1, 16, 16))
        np.testing.assert_allclose(net.forward(x), other.forward(x))

    def test_load_state_dict_missing_key(self):
        net = tiny_network()
        state = net.state_dict()
        del state["fc.weight"]
        with pytest.raises(KeyError):
            tiny_network().load_state_dict(state)

    def test_load_state_dict_shape_mismatch(self):
        net = tiny_network()
        state = net.state_dict()
        state["fc.weight"] = state["fc.weight"][:, :-1]
        with pytest.raises(ValueError):
            tiny_network().load_state_dict(state)

    def test_zero_grad(self, rng):
        net = tiny_network()
        x = rng.normal(size=(1, 1, 16, 16))
        out = net.forward(x, train=True)
        net.backward(np.ones_like(out))
        net.zero_grad()
        for layer in net.layers:
            for grad in layer.grads.values():
                assert not grad.any()


class TestModelBuilders:
    @pytest.mark.parametrize(
        "builder,outputs",
        [(build_mini_alexnet, 8), (build_mini_fasterm, 12), (build_mini_faster16, 12)],
    )
    def test_shapes(self, builder, outputs, rng):
        net = builder()
        out = net.forward(rng.normal(size=(2, 1, 64, 64)))
        assert out.shape == (2, outputs)

    def test_deterministic_construction(self):
        a = build_mini_fasterm().state_dict()
        b = build_mini_fasterm().state_dict()
        for key in a:
            np.testing.assert_array_equal(a[key], b[key])

    def test_faster16_deeper_than_fasterm(self):
        fasterm = build_mini_fasterm()
        faster16 = build_mini_faster16()
        def convs(net):
            return sum(
                1 for layer in net.layers if isinstance(layer, Conv2d)
            )

        assert convs(faster16) > convs(fasterm)

    def test_faster16_prefix_costs_more(self):
        fasterm = build_mini_fasterm()
        faster16 = build_mini_faster16()
        assert faster16.prefix_macs(
            faster16.last_spatial_layer()
        ) > fasterm.prefix_macs(fasterm.last_spatial_layer())
