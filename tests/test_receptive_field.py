"""Receptive-field propagation tests, including a brute-force cross-check
that perturbs single input pixels and observes which outputs change."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.receptive_field import ReceptiveField, propagate, receptive_field_of
from repro.nn import Conv2d, MaxPool2d, Network, ReLU


class TestPropagate:
    def test_single_conv(self):
        rf = propagate([(3, 1, 1)])
        assert rf == ReceptiveField(size=3, stride=1, padding=1)

    def test_conv_then_pool(self):
        # conv 3x3 s1 p1 -> pool 2x2 s2: size 3+1=4, stride 2.
        rf = propagate([(3, 1, 1), (2, 2, 0)])
        assert rf == ReceptiveField(size=4, stride=2, padding=1)

    def test_vgg_block_structure(self):
        """Two 3x3 convs + pool per block: classic VGG growth."""
        geoms = [(3, 1, 1), (3, 1, 1), (2, 2, 0)] * 2
        rf = propagate(geoms)
        assert rf.stride == 4
        # block 1: 3 -> 5 -> 6 (stride 2); block 2: 10 -> 14 -> 16 (stride 4).
        assert rf.size == 16

    def test_identity_layers_ignored(self):
        rf_with = propagate([(3, 1, 1), (1, 1, 0), (2, 2, 0)])
        rf_without = propagate([(3, 1, 1), (2, 2, 0)])
        assert rf_with == rf_without

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            propagate([(0, 1, 0)])

    def test_invalid_rf(self):
        with pytest.raises(ValueError):
            ReceptiveField(size=0, stride=1, padding=0)


class TestReceptiveFieldQueries:
    def test_input_origin_with_padding(self):
        rf = ReceptiveField(size=6, stride=2, padding=2)
        # Paper Fig. 7: first field starts at -2.
        assert rf.input_origin(0) == -2
        assert rf.input_origin(1) == 0

    def test_input_extent(self):
        rf = ReceptiveField(size=6, stride=2, padding=2)
        assert rf.input_extent(0) == (-2, 4)

    def test_full_tiles_fig7(self):
        """Paper Fig. 7: size 6, stride 2, padding 2 on an 8-wide image.

        Field (a) at index 0 spans [-2, 4): full in-bounds tiles 0..1.
        Field (b) at index 1 spans [0, 6): tiles 0..2.
        Field (c) at index 2 spans [2, 8): tiles 1..3.
        """
        rf = ReceptiveField(size=6, stride=2, padding=2)
        num_tiles = 4  # 8-pixel image, 2-pixel tiles
        assert rf.full_tiles(0, num_tiles) == (0, 2)
        assert rf.full_tiles(1, num_tiles) == (0, 3)
        assert rf.full_tiles(2, num_tiles) == (1, 4)

    def test_partial_tiles_ignored(self):
        """Non-multiple size: trailing partial tile dropped (§III-A)."""
        rf = ReceptiveField(size=7, stride=2, padding=0)
        assert rf.tiles_per_field() == 3
        first, last = rf.full_tiles(0, 10)
        assert last - first == 3

    def test_fully_out_of_bounds(self):
        rf = ReceptiveField(size=4, stride=4, padding=8)
        first, last = rf.full_tiles(0, 2)
        assert first >= last  # empty range


class TestAgainstNetwork:
    def _brute_force_rf_size(self, net, target):
        """Perturb each input pixel; measure the input span feeding output
        centre position."""
        shape = net.input_shape
        x = np.zeros((1,) + shape)
        base = net.forward_prefix(x, target)
        c, oh, ow = net.layer_output_shape(target)
        centre = (oh // 2, ow // 2)
        touched = []
        for px in range(shape[1]):
            probe = x.copy()
            probe[0, 0, shape[1] // 2, px] = 10.0
            out = net.forward_prefix(probe, target)
            if not np.allclose(
                out[0, :, centre[0], centre[1]], base[0, :, centre[0], centre[1]]
            ):
                touched.append(px)
        return touched

    def test_rf_matches_brute_force(self):
        rng = np.random.default_rng(3)
        net = Network(
            "probe",
            [
                Conv2d("c1", 1, 2, kernel=3, stride=1, pad=1, rng=rng),
                ReLU("r1"),
                MaxPool2d("p1", 2, 2),
                Conv2d("c2", 2, 2, kernel=3, stride=1, pad=1, rng=rng),
            ],
            (1, 16, 16),
        )
        # Make all weights positive so perturbations always propagate.
        for layer in net.layers:
            if "weight" in layer.params:
                layer.params["weight"] = np.abs(layer.params["weight"]) + 0.1
        rf = receptive_field_of(net, "c2")
        touched = self._brute_force_rf_size(net, "c2")
        span = max(touched) - min(touched) + 1
        assert span <= rf.size
        assert span >= rf.size - 2 * rf.padding  # padding clips the edges

    def test_receptive_field_of_rejects_nonspatial(self, trained_fasterm):
        with pytest.raises(ValueError):
            receptive_field_of(trained_fasterm, "fc1")

    def test_mini_networks_rf(self, trained_fasterm):
        rf = receptive_field_of(trained_fasterm, trained_fasterm.last_spatial_layer())
        assert rf.stride == 8
        assert rf.size == 59


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(1, 5), st.integers(1, 3), st.integers(0, 2)),
        min_size=1,
        max_size=5,
    )
)
def test_propagate_composition_property(geoms):
    """Propagating all at once equals propagating in two halves."""
    full = propagate(geoms)
    half = len(geoms) // 2
    first = propagate(geoms[:half]) if half else ReceptiveField(1, 1, 0)
    # Compose the second half on top of the first manually.
    size, stride, padding = first.size, first.stride, first.padding
    for field, layer_stride, pad in geoms[half:]:
        size = size + (field - 1) * stride
        padding = padding + pad * stride
        stride = stride * layer_stride
    assert (full.size, full.stride, full.padding) == (size, stride, padding)


@settings(max_examples=30, deadline=None)
@given(
    size=st.integers(1, 16),
    stride=st.integers(1, 8),
    padding=st.integers(0, 8),
    index=st.integers(0, 10),
    num_tiles=st.integers(1, 16),
)
def test_full_tiles_always_within_bounds(size, stride, padding, index, num_tiles):
    if size < stride:
        size = stride
    rf = ReceptiveField(size=size, stride=stride, padding=padding)
    first, last = rf.full_tiles(index, num_tiles)
    assert 0 <= first
    assert last <= num_tiles
    if last > first:
        # Every full tile really is inside the field extent.
        start, stop = rf.input_extent(index)
        assert first * stride >= start
        assert last * stride <= stop
