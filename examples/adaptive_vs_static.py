"""Adaptive vs static key-frame policies (the §II-C4 design choice).

Sweeps static intervals and adaptive thresholds on a mixed workload and
prints the accuracy each achieves at its resulting key-frame budget. The
adaptive policy spends key frames where the scene is hard (occlusion,
chaos) and coasts elsewhere, tracing a better accuracy/cost frontier —
the paper's Fig. 15 argument.

Run:  python examples/adaptive_vs_static.py
"""

from repro.analysis import detection_score
from repro.analysis.reporting import format_table
from repro.core import (
    AMCExecutor,
    EVA2Pipeline,
    MatchErrorPolicy,
    MotionMagnitudePolicy,
    StaticPolicy,
)
from repro.nn.train import get_trained_network
from repro.video import generate_clip, scenario

#: a deliberately mixed workload: half easy scenes, half hard ones.
WORKLOAD = ["static", "slow", "linear_motion", "occlusion", "chaotic", "camera_pan"]
CLIPS_PER_SCENARIO = 2


def build_workload():
    return [
        generate_clip(scenario(name), seed=4000 + 10 * i + j, num_frames=14)
        for i, name in enumerate(WORKLOAD)
        for j in range(CLIPS_PER_SCENARIO)
    ]


def evaluate(policy, clips, network):
    pipeline = EVA2Pipeline(AMCExecutor(network), policy)
    results = pipeline.run_clips(clips)
    total = sum(len(r) for r in results)
    keys = sum(r.num_key_frames for r in results)
    return detection_score(results, clips), keys / total


def main():
    network = get_trained_network("mini_fasterm")
    clips = build_workload()

    rows = []
    for interval in (1, 2, 4, 8):
        accuracy, keys = evaluate(StaticPolicy(interval), clips, network)
        rows.append([f"static every {interval}", 100 * keys, 100 * accuracy])
    for threshold in (1.2, 1.8, 2.5):
        accuracy, keys = evaluate(MatchErrorPolicy(threshold), clips, network)
        rows.append([f"match error > {threshold}", 100 * keys, 100 * accuracy])
    for threshold in (20.0, 50.0, 90.0):
        accuracy, keys = evaluate(MotionMagnitudePolicy(threshold), clips, network)
        rows.append([f"motion mag > {threshold}", 100 * keys, 100 * accuracy])

    print("Key-frame policies on a mixed easy/hard workload (mini_fasterm)")
    print(format_table(["policy", "keys %", "mAP %"], rows))
    print()
    print("Reading the table: compare rows at similar keys %. The adaptive")
    print("policies spend key frames where the scene is hard (occlusion,")
    print("chaos) and coast on easy clips; the match-error metric is the one")
    print("EVA2 implements because it falls out of block matching for free.")
    print("benchmarks/bench_fig15_keyframe.py runs the full-size comparison.")


if __name__ == "__main__":
    main()
