"""Quickstart: run one video clip through the EVA2 pipeline.

Demonstrates the core API in ~30 lines of logic:

1. get a trained detection network from the model zoo,
2. wrap it in an AMC executor (prefix/suffix split at the last spatial
   layer, bilinear warping),
3. stream a synthetic clip through the EVA2 pipeline under an adaptive
   key-frame policy,
4. report per-frame decisions, task accuracy, and the modelled energy
   saving on the paper's FasterM-class hardware.

Run:  python examples/quickstart.py
"""

from repro.analysis import detection_score
from repro.analysis.reporting import format_table
from repro.core import AMCExecutor, EVA2Pipeline, MatchErrorPolicy
from repro.hardware import VPUModel
from repro.nn.train import get_trained_network
from repro.video import generate_clip, scenario


def main():
    # 1. A trained mini detection network (trains on first use, cached).
    network = get_trained_network("mini_fasterm")

    # 2. AMC executor: stores key-frame activations, warps them for
    #    predicted frames. Defaults: last spatial target layer, RFBME
    #    motion estimation, bilinear interpolation.
    executor = AMCExecutor(network)
    print(f"network: {network.name}")
    print(f"AMC target layer: {executor.target}")
    print(f"receptive field: size={executor.rf.size} stride={executor.rf.stride}")
    print(f"prefix MACs skipped per predicted frame: {executor.prefix_macs():,}")
    print()

    # 3. Stream a clip under an adaptive key-frame policy: frames whose
    #    RFBME match error exceeds the threshold run precisely.
    clip = generate_clip(scenario("camera_pan"), seed=2, num_frames=16)
    pipeline = EVA2Pipeline(executor, MatchErrorPolicy(threshold=2.0))
    result = pipeline.run_clip(clip)

    rows = []
    for record in result.records:
        rows.append([
            record.index,
            "KEY" if record.is_key else "pred",
            record.match_error if record.match_error is not None else "-",
            record.motion_magnitude if record.motion_magnitude is not None else "-",
        ])
    print(format_table(["frame", "mode", "match error", "motion magnitude"], rows))
    print()

    # 4. Accuracy (vs running every frame precisely) and hardware cost.
    accuracy = detection_score([result], [clip])
    from repro.core import AlwaysKeyPolicy

    precise = EVA2Pipeline(executor, AlwaysKeyPolicy()).run_clip(clip)
    precise_accuracy = detection_score([precise], [clip])
    vpu = VPUModel("fasterm")
    avg = vpu.average_frame_cost(result.key_fraction)
    orig = VPUModel.total(vpu.baseline_frame_cost())
    print(f"key frames: {result.num_key_frames}/{len(result)} "
          f"({100 * result.key_fraction:.0f}%)")
    print(f"mAP on this clip: {100 * accuracy:.1f}% with AMC vs "
          f"{100 * precise_accuracy:.1f}% all-precise")
    print(f"modelled energy/frame (FasterM-class VPU): "
          f"{avg.energy_mj:.1f} mJ vs {orig.energy_mj:.1f} mJ baseline "
          f"({100 * (1 - avg.energy_mj / orig.energy_mj):.0f}% saving)")


if __name__ == "__main__":
    main()
