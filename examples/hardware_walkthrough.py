"""Hardware model walkthrough: the numbers behind Figs. 12-13 & Table I.

Builds the composed vision-processing-unit model (Eyeriss for conv layers,
EIE for FC layers, EVA2 for motion compensation) for the paper's three
real networks and prints:

* die area per unit (Fig. 12), with EVA2's internal breakdown,
* per-frame latency/energy for baseline, key, and predicted frames
  (Fig. 13), split by unit,
* the first-order op-count argument for why predicted frames are cheap
  (§IV-A).

Run:  python examples/hardware_walkthrough.py
"""

from repro.analysis import first_order_report
from repro.analysis.reporting import format_table
from repro.hardware import PAPER_TARGET_LAYERS, VPUConfig, VPUModel, spec_by_name


def main():
    names = ["alexnet", "fasterm", "faster16"]

    # --- Fig. 12: area ------------------------------------------------ #
    vpu = VPUModel("faster16")
    area = vpu.area_breakdown()
    eva2 = vpu.eva2.area_breakdown()
    print("Die area on 65 nm (Fig. 12):")
    print(format_table(
        ["unit", "mm2"],
        [["Eyeriss (conv)", area["eyeriss_mm2"]],
         ["EIE (FC)", area["eie_mm2"]],
         ["EVA2", area["eva2_mm2"]]],
    ))
    print(f"EVA2 is {100 * area['eva2_fraction']:.1f}% of the VPU "
          f"(paper: 3.5%); its pixel buffers take "
          f"{100 * eva2['pixel_buffers_mm2'] / eva2['total_mm2']:.0f}% "
          f"(paper: 54.5%).")
    print()

    # --- Fig. 13: per-frame costs ------------------------------------- #
    rows = []
    for name in names:
        memoize = name == "alexnet"
        model = VPUModel(name, VPUConfig(memoize=memoize))
        orig = VPUModel.total(model.baseline_frame_cost())
        pred = VPUModel.total(model.predicted_frame_cost())
        rows.append([
            model.spec.name, model.target,
            orig.latency_ms, orig.energy_mj,
            pred.latency_ms, pred.energy_mj,
            100 * pred.energy_mj / orig.energy_mj,
        ])
    print("Per-frame cost (Fig. 13): baseline vs predicted frames:")
    print(format_table(
        ["network", "target", "orig ms", "orig mJ", "pred ms", "pred mJ",
         "pred/orig %"],
        rows,
    ))
    print()

    # --- §IV-A: why predicted frames are cheap ------------------------ #
    rows = []
    for name in names:
        spec = spec_by_name(name)
        target = PAPER_TARGET_LAYERS[spec.name]
        size, stride, _ = spec.receptive_field(target)
        report = first_order_report(spec, target, size, stride)
        rows.append([
            spec.name, f"{report.prefix_macs:.3g}",
            f"{report.rfbme_ops:.3g}", f"{report.savings_ratio:.0f}x",
        ])
    print("First-order model (SecIV-A): skipped prefix vs RFBME cost:")
    print(format_table(
        ["network", "prefix MACs", "RFBME adds", "MACs per add"], rows
    ))
    print()
    print("The Faster16 row is the paper's headline: ~1.7e11 MACs avoided for")
    print("~1.3e7 motion-estimation adds — four orders of magnitude.")


if __name__ == "__main__":
    main()
