"""Live object detection across scene types — the paper's motivating
workload.

Runs the detection network over every scenario family with three
execution strategies:

* precise      — every frame through the full CNN (the paper's ``orig``),
* AMC adaptive — EVA2 with the match-error key-frame policy,
* stale        — frame 0 only, reused forever (the lower bound).

Shows per-scenario mAP and key-frame fraction: easy scenes (static, slow)
run almost entirely on predicted frames with no accuracy loss, while
occlusion and chaotic scenes force the adaptive policy to spend key
frames.

Run:  python examples/live_detection.py
"""

from repro.analysis import detection_score
from repro.analysis.reporting import format_table
from repro.core import (
    AMCExecutor,
    AlwaysKeyPolicy,
    EVA2Pipeline,
    MatchErrorPolicy,
    NeverKeyPolicy,
)
from repro.nn.train import get_trained_network
from repro.video import generate_clip, scenario, scenario_names

CLIPS_PER_SCENARIO = 3
FRAMES_PER_CLIP = 14
MATCH_ERROR_THRESHOLD = 2.0


def scenario_clips(name):
    return [
        generate_clip(scenario(name), seed=9000 + i, num_frames=FRAMES_PER_CLIP)
        for i in range(CLIPS_PER_SCENARIO)
    ]


def main():
    network = get_trained_network("mini_fasterm")
    strategies = {
        "precise": lambda: AlwaysKeyPolicy(),
        "amc": lambda: MatchErrorPolicy(MATCH_ERROR_THRESHOLD),
        "stale": lambda: NeverKeyPolicy(),
    }

    rows = []
    for name in scenario_names():
        clips = scenario_clips(name)
        scores = {}
        key_fraction = None
        for label, make_policy in strategies.items():
            pipeline = EVA2Pipeline(AMCExecutor(network), make_policy())
            results = pipeline.run_clips(clips)
            scores[label] = detection_score(results, clips)
            if label == "amc":
                total = sum(len(r) for r in results)
                keys = sum(r.num_key_frames for r in results)
                key_fraction = keys / total
        rows.append([
            name,
            100 * scores["precise"],
            100 * scores["amc"],
            100 * scores["stale"],
            100 * key_fraction,
        ])

    print("Live detection with AMC (mini_fasterm)")
    print(format_table(
        ["scenario", "precise mAP", "AMC mAP", "stale mAP", "AMC keys %"],
        rows,
    ))
    print()
    overall_amc = sum(r[2] for r in rows) / len(rows)
    overall_precise = sum(r[1] for r in rows) / len(rows)
    overall_keys = sum(r[4] for r in rows) / len(rows)
    print(f"overall: AMC reaches {overall_amc:.1f} mAP vs {overall_precise:.1f} "
          f"precise while running only {overall_keys:.0f}% of frames as key frames")


if __name__ == "__main__":
    main()
