"""Legacy entry point: this environment's setuptools lacks the wheel
package, so editable installs need the pre-PEP-517 path
(``pip install -e . --no-use-pep517``). Configuration lives in
pyproject.toml."""

from setuptools import setup

setup()
